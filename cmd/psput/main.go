// Command psput is the client CLI for a live PeerStripe ring:
//
//	psput -seed 127.0.0.1:7001 put local.dat remote-name
//	psput -seed 127.0.0.1:7001 get remote-name out.dat
//	psput -seed 127.0.0.1:7001 range remote-name 1048576 4096
//	psput -seed 127.0.0.1:7001 ls
//
// Files are striped into capacity-probed chunks and protected with the
// selected erasure code ((2,3) XOR by default).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"peerstripe/internal/core"
	"peerstripe/internal/node"
)

func main() {
	var (
		seed  = flag.String("seed", "127.0.0.1:7001", "address of any ring member")
		code  = flag.String("code", "xor", "erasure code: null, xor, online, rs")
		sched = flag.String("schedule", "", "online-code check schedule: uniform (default), windowed(NN), banded(NN[xB])")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: psput [-seed addr] [-code null|xor|online|rs] [-schedule uniform|windowed|banded] put|get|range|ls|stat ...")
		os.Exit(2)
	}

	ec, err := core.CodeFor(*code, *sched)
	if err != nil {
		log.Fatal(err)
	}

	c, err := node.NewClient(*seed, ec)
	if err != nil {
		log.Fatal(err)
	}

	switch args[0] {
	case "put":
		if len(args) != 3 {
			log.Fatal("usage: put <localFile> <remoteName>")
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		cat, err := c.StoreFile(args[2], data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stored %s: %d bytes in %d chunks\n", args[2], len(data), cat.NumChunks())
	case "get":
		if len(args) != 3 {
			log.Fatal("usage: get <remoteName> <localFile>")
		}
		data, err := c.FetchFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fetched %s: %d bytes\n", args[1], len(data))
	case "range":
		if len(args) != 4 {
			log.Fatal("usage: range <remoteName> <offset> <length>")
		}
		off, err1 := strconv.ParseInt(args[2], 10, 64)
		n, err2 := strconv.ParseInt(args[3], 10, 64)
		if err1 != nil || err2 != nil {
			log.Fatal("offset/length must be integers")
		}
		data, err := c.FetchRange(args[1], off, n)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
	case "ls":
		for _, n := range c.Ring() {
			cap, used, blocks, err := c.Stat(n.Addr)
			if err != nil {
				fmt.Printf("%s  %s  unreachable: %v\n", n.ID.Short(), n.Addr, err)
				continue
			}
			fmt.Printf("%s  %-21s  used %d / %d bytes, %d blocks\n", n.ID.Short(), n.Addr, used, cap, blocks)
		}
	default:
		log.Fatalf("unknown subcommand %q", args[0])
	}
}
