// Command psput is the client CLI for a live PeerStripe ring, built on
// the public peerstripe package:
//
//	psput -seed 127.0.0.1:7001 put local.dat remote-name
//	psput -seed 127.0.0.1:7001 get remote-name out.dat
//	psput -seed 127.0.0.1:7001 range remote-name 1048576 4096
//	psput -seed 127.0.0.1:7001 repair remote-name
//	psput -seed 127.0.0.1:7001 rm remote-name
//	psput -seed 127.0.0.1:7001 ls
//
// Files are striped into capacity-probed chunks and protected with the
// selected erasure code ((2,3) XOR by default). put streams from disk
// chunk by chunk — files larger than memory work — and blocks larger
// than a wire frame move as bounded streaming segments. Reads are
// degraded-tolerant (hedged fetches decode from any sufficient block
// subset even with nodes down).
//
// Exit codes let scripts distinguish failures: 0 success, 1 operation
// error, 2 usage error, 3 name not found, 4 ring unreachable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"peerstripe"
)

// Exit codes.
const (
	exitOK          = 0
	exitErr         = 1
	exitUsage       = 2
	exitNotFound    = 3
	exitUnavailable = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, performs
// one subcommand, and returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psput", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.String("seed", "127.0.0.1:7001", "address of any ring member")
		code     = fs.String("code", "xor", "erasure code: null, xor, online, rs")
		sched    = fs.String("schedule", "", "online-code check schedule: banded25x4 (default), uniform, windowed(NN), banded(NN[xB])")
		workers  = fs.Int("workers", 0, "parallel chunk coding (0 = GOMAXPROCS, 1 = sequential)")
		xfers    = fs.Int("transfers", 0, "in-flight block transfers per operation (0 = default)")
		hedge    = fs.Int("hedge", 0, "extra block fetches requested up front per chunk on reads (0 = rely on stall hedging)")
		hedgeMS  = fs.Duration("hedge-delay", 0, "per-source stall cutoff before a read races a replacement stream (0 = default)")
		chunkCap = fs.Int64("chunkcap", 0, "cap on chunk size in bytes (0 = default 16 MiB)")
		segment  = fs.Int("segment", 0, "wire streaming segment size in bytes (0 = default 4 MiB)")
		window   = fs.Int("window", 0, "in-flight segments per streamed block transfer (0 = default, 1 = in-order)")
		depth    = fs.Int("pipeline-depth", 0, "chunks in flight during a streamed store (0 = default)")
		timeout  = fs.Duration("timeout", 0, "per-RPC deadline (0 = default 10s)")
		deadline = fs.Duration("deadline", 0, "overall operation deadline (0 = none)")
		v1       = fs.Bool("v1", false, "force the single-shot v1 transport (dial per request)")
	)
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	args := fs.Args()
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: psput [flags] put|get|range|repair|rm|ls ...")
		fs.PrintDefaults()
		return exitUsage
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	opts := []peerstripe.Option{
		peerstripe.WithCode(*code),
		peerstripe.WithWorkers(*workers),
		peerstripe.WithHedge(*hedge),
	}
	if *xfers > 0 {
		opts = append(opts, peerstripe.WithTransfers(*xfers))
	}
	if *segment > 0 {
		opts = append(opts, peerstripe.WithSegment(*segment))
	}
	if *window > 0 {
		opts = append(opts, peerstripe.WithStreamWindow(*window))
	}
	if *depth > 0 {
		opts = append(opts, peerstripe.WithPipelineDepth(*depth))
	}
	if *sched != "" {
		opts = append(opts, peerstripe.WithSchedule(*sched))
	}
	if *hedgeMS != 0 {
		opts = append(opts, peerstripe.WithHedgeDelay(*hedgeMS))
	}
	if *chunkCap > 0 {
		opts = append(opts, peerstripe.WithChunkCap(*chunkCap))
	}
	if *timeout > 0 {
		opts = append(opts, peerstripe.WithTimeout(*timeout))
	}
	if *v1 {
		opts = append(opts, peerstripe.WithV1())
	}

	op := args[0]
	fail := func(name string, err error) int {
		// Every failure names the op, the object, and the deadline in
		// force, so a script's log line is self-explanatory.
		fmt.Fprintf(stderr, "psput %s %q (deadline %s): %v\n", op, name, deadlineString(*deadline), err)
		switch {
		case errors.Is(err, peerstripe.ErrNotFound):
			return exitNotFound
		case errors.Is(err, peerstripe.ErrRingUnavailable):
			return exitUnavailable
		default:
			return exitErr
		}
	}

	client, err := peerstripe.Dial(ctx, *seed, opts...)
	if err != nil {
		return fail(*seed, err)
	}
	defer client.Close()

	switch op {
	case "put":
		if len(args) != 3 {
			fmt.Fprintln(stderr, "usage: put <localFile> <remoteName>")
			return exitUsage
		}
		local, remote := args[1], args[2]
		f, err := os.Open(local)
		if err != nil {
			return fail(local, err)
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return fail(local, err)
		}
		start := time.Now()
		info, err := client.Store(ctx, remote, f, st.Size())
		if err != nil {
			return fail(remote, err)
		}
		el := time.Since(start)
		fmt.Fprintf(stdout, "stored %s: %d bytes in %d chunks (%.1f MB/s)\n",
			remote, info.Size, info.Chunks, float64(info.Size)/1e6/el.Seconds())
	case "get":
		if len(args) != 3 {
			fmt.Fprintln(stderr, "usage: get <remoteName> <localFile>")
			return exitUsage
		}
		remote, local := args[1], args[2]
		src, err := client.Open(ctx, remote)
		if err != nil {
			return fail(remote, err)
		}
		defer src.Close()
		dst, err := os.Create(local)
		if err != nil {
			return fail(local, err)
		}
		start := time.Now()
		n, err := io.Copy(dst, src)
		if cerr := dst.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fail(remote, err)
		}
		fmt.Fprintf(stdout, "fetched %s: %d bytes (%.1f MB/s)\n",
			remote, n, float64(n)/1e6/time.Since(start).Seconds())
	case "range":
		if len(args) != 4 {
			fmt.Fprintln(stderr, "usage: range <remoteName> <offset> <length>")
			return exitUsage
		}
		off, err1 := strconv.ParseInt(args[2], 10, 64)
		n, err2 := strconv.ParseInt(args[3], 10, 64)
		if err1 != nil || err2 != nil || off < 0 || n < 0 {
			fmt.Fprintln(stderr, "offset/length must be non-negative integers")
			return exitUsage
		}
		f, err := client.Open(ctx, args[1])
		if err != nil {
			return fail(args[1], err)
		}
		defer f.Close()
		// Validate against the file before allocating: a bogus length
		// must not size a buffer, and a range outside the file is an
		// error, not silence.
		if off >= f.Size() {
			return fail(args[1], fmt.Errorf("range start %d beyond file of %d bytes", off, f.Size()))
		}
		if max := f.Size() - off; n > max {
			n = max
		}
		buf := make([]byte, n)
		read, err := f.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			return fail(args[1], err)
		}
		stdout.Write(buf[:read]) //nolint:errcheck
	case "repair":
		if len(args) != 2 {
			fmt.Fprintln(stderr, "usage: repair <remoteName>")
			return exitUsage
		}
		st, err := client.Repair(ctx, args[1])
		if err != nil {
			return fail(args[1], err)
		}
		fmt.Fprintf(stdout, "repaired %s: %d chunks scanned, %d blocks missing, %d re-created, %d CAT replicas restored, %d chunks lost\n",
			args[1], st.ChunksScanned, st.BlocksMissing, st.BlocksRecreated, st.CATReplicasRecreated, st.ChunksLost)
	case "rm":
		if len(args) != 2 {
			fmt.Fprintln(stderr, "usage: rm <remoteName>")
			return exitUsage
		}
		// Like repair, rm is a maintenance op: shed unreachable members
		// first so deletes target the live owners.
		if _, err := client.Prune(ctx); err != nil {
			return fail(args[1], err)
		}
		if err := client.Delete(ctx, args[1]); err != nil {
			return fail(args[1], err)
		}
		fmt.Fprintf(stdout, "removed %s\n", args[1])
	case "ls":
		for _, addr := range client.Nodes() {
			st, err := client.StatNode(ctx, addr)
			if err != nil {
				fmt.Fprintf(stdout, "%-21s  unreachable: %v\n", addr, err)
				continue
			}
			fmt.Fprintf(stdout, "%-21s  used %d / %d bytes, %d blocks\n", st.Addr, st.Used, st.Capacity, st.Blocks)
		}
	default:
		fmt.Fprintf(stderr, "unknown subcommand %q\n", op)
		return exitUsage
	}
	return exitOK
}

func deadlineString(d time.Duration) string {
	if d <= 0 {
		return "none"
	}
	return d.String()
}
