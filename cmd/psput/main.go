// Command psput is the client CLI for a live PeerStripe ring:
//
//	psput -seed 127.0.0.1:7001 put local.dat remote-name
//	psput -seed 127.0.0.1:7001 get remote-name out.dat
//	psput -seed 127.0.0.1:7001 range remote-name 1048576 4096
//	psput -seed 127.0.0.1:7001 repair remote-name
//	psput -seed 127.0.0.1:7001 rm remote-name
//	psput -seed 127.0.0.1:7001 ls
//
// Files are striped into capacity-probed chunks and protected with the
// selected erasure code ((2,3) XOR by default). Transfers ride the
// multiplexed v2 transport with bounded-parallel block fan-out; reads
// are degraded-tolerant (hedged fetches decode from any sufficient
// block subset even with nodes down).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/node"
)

func main() {
	var (
		seed     = flag.String("seed", "127.0.0.1:7001", "address of any ring member")
		code     = flag.String("code", "xor", "erasure code: null, xor, online, rs")
		sched    = flag.String("schedule", "", "online-code check schedule: uniform (default), windowed(NN), banded(NN[xB])")
		workers  = flag.Int("workers", 0, "parallel block transfers (0 = GOMAXPROCS, 1 = sequential)")
		hedge    = flag.Int("hedge", 1, "extra block fetches raced per chunk on reads")
		hedgeMS  = flag.Duration("hedge-delay", 0, "straggler cutoff before a read widens to all blocks (0 = default)")
		chunkCap = flag.Int64("chunkcap", 0, "cap on probed chunk size in bytes (0 = uncapped)")
		timeout  = flag.Duration("timeout", 0, "per-RPC deadline (0 = default)")
		v1       = flag.Bool("v1", false, "force the single-shot v1 transport (dial per request)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: psput [flags] put|get|range|repair|rm|ls ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ec, err := core.CodeFor(*code, *sched)
	if err != nil {
		log.Fatal(err)
	}

	c, err := node.NewClient(*seed, ec)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	c.Workers = *workers
	c.Hedge = *hedge
	c.HedgeDelay = *hedgeMS
	c.ChunkCap = *chunkCap
	c.Timeout = *timeout
	c.V1 = *v1

	switch args[0] {
	case "put":
		if len(args) != 3 {
			log.Fatal("usage: put <localFile> <remoteName>")
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		cat, err := c.StoreFile(args[2], data)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("stored %s: %d bytes in %d chunks (%.1f MB/s)\n",
			args[2], len(data), cat.NumChunks(), float64(len(data))/1e6/el.Seconds())
	case "get":
		if len(args) != 3 {
			log.Fatal("usage: get <remoteName> <localFile>")
		}
		start := time.Now()
		data, err := c.FetchFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fetched %s: %d bytes (%.1f MB/s)\n",
			args[1], len(data), float64(len(data))/1e6/el.Seconds())
	case "range":
		if len(args) != 4 {
			log.Fatal("usage: range <remoteName> <offset> <length>")
		}
		off, err1 := strconv.ParseInt(args[2], 10, 64)
		n, err2 := strconv.ParseInt(args[3], 10, 64)
		if err1 != nil || err2 != nil {
			log.Fatal("offset/length must be integers")
		}
		data, err := c.FetchRange(args[1], off, n)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
	case "repair":
		if len(args) != 2 {
			log.Fatal("usage: repair <remoteName>")
		}
		// Repair places blocks at their post-failure owners, so the
		// view must first shed unreachable members (the membership
		// protocol propagates joins, not departures).
		dropped, err := c.PruneRing()
		if err != nil {
			log.Fatal(err)
		}
		if dropped > 0 {
			fmt.Printf("pruned %d unreachable ring member(s)\n", dropped)
		}
		st, err := c.Repair(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("repaired %s: %d chunks scanned, %d blocks missing, %d re-created, %d CAT replicas restored, %d chunks lost\n",
			args[1], st.ChunksScanned, st.BlocksMissing, st.BlocksRecreated, st.CATReplicasRecreated, st.ChunksLost)
	case "rm":
		if len(args) != 2 {
			log.Fatal("usage: rm <remoteName>")
		}
		// Like repair, rm is a maintenance op: shed unreachable
		// members first so deletes target the live owners.
		if _, err := c.PruneRing(); err != nil {
			log.Fatal(err)
		}
		if err := c.DeleteFile(args[1]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("removed %s\n", args[1])
	case "ls":
		for _, n := range c.Ring() {
			cap, used, blocks, err := c.Stat(n.Addr)
			if err != nil {
				fmt.Printf("%s  %s  unreachable: %v\n", n.ID.Short(), n.Addr, err)
				continue
			}
			fmt.Printf("%s  %-21s  used %d / %d bytes, %d blocks\n", n.ID.Short(), n.Addr, used, cap, blocks)
		}
	default:
		log.Fatalf("unknown subcommand %q", args[0])
	}
}
