// Command psnode runs one live PeerStripe storage node through the
// public peerstripe package. The first node of a ring needs no seed;
// later nodes join through any member:
//
//	psnode -listen 127.0.0.1:7001 -capacity 1073741824
//	psnode -listen 127.0.0.1:7002 -capacity 1073741824 -seed 127.0.0.1:7001
//
// The node contributes the given storage to the ring and serves both
// wire protocol versions — pipelined multiplexed (v2) connections with
// streaming transfers for blocks larger than a frame, and single-shot
// v1 — until interrupted. A -name gives the node a stable ring
// identity across restarts instead of one derived from its listen
// address.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"peerstripe"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to listen on")
		capacity = flag.Int64("capacity", 1<<30, "contributed storage in bytes")
		seed     = flag.String("seed", "", "address of any existing ring member (empty starts a new ring)")
		name     = flag.String("name", "", "stable node name; its hash becomes the ring ID (empty derives the ID from the listen address)")
		inflight = flag.Int("inflight", 0, "max concurrently served requests per v2 connection (0 = default)")
		statKick = flag.Duration("statusEvery", 30*time.Second, "status print interval (0 disables)")
	)
	flag.Parse()

	n, err := peerstripe.ListenAndServe(*listen, *capacity, *seed, *name)
	if err != nil {
		log.Fatal(err)
	}
	defer n.Close()
	n.SetMaxInflight(*inflight)
	fmt.Printf("psnode %s listening on %s (capacity %d bytes, ring size %d)\n",
		n.ID(), n.Addr(), *capacity, n.RingSize())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *statKick > 0 {
		ticker := time.NewTicker(*statKick)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				fmt.Printf("status: ring=%d blocks=%d used=%d\n", n.RingSize(), n.Blocks(), n.Used())
			case <-stop:
				fmt.Println("shutting down")
				return
			}
		}
	}
	<-stop
	fmt.Println("shutting down")
}
