// Command psnode runs one live PeerStripe storage node through the
// public peerstripe package. The first node of a ring needs no seed;
// later nodes join through any member:
//
//	psnode -listen 127.0.0.1:7001 -capacity 1073741824
//	psnode -listen 127.0.0.1:7002 -capacity 1073741824 -seed 127.0.0.1:7001
//
// The node contributes the given storage to the ring and serves both
// wire protocol versions — pipelined multiplexed (v2) connections with
// streaming transfers for blocks larger than a frame, and single-shot
// v1 — until interrupted. A -name gives the node a stable ring
// identity across restarts instead of one derived from its listen
// address.
//
// With -detect the node runs the SWIM-style failure detector (probe,
// indirect probe, suspicion, death gossip; see docs/RING.md), and with
// -repair it heals files affected by committed deaths autonomously:
//
//	psnode -listen 127.0.0.1:7003 -seed 127.0.0.1:7001 -detect -repair xor
//
// An optional -admin address serves the node's observability surface
// over HTTP: /-/metrics (Prometheus text), /-/healthz, and
// /debug/pprof/. The endpoints are unauthenticated — bind them to
// loopback or a management network (see docs/OBSERVABILITY.md):
//
//	psnode -listen 127.0.0.1:7001 -admin 127.0.0.1:9001
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"peerstripe"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to listen on")
		capacity = flag.Int64("capacity", 1<<30, "contributed storage in bytes")
		seed     = flag.String("seed", "", "address of any existing ring member (empty starts a new ring)")
		name     = flag.String("name", "", "stable node name; its hash becomes the ring ID (empty derives the ID from the listen address)")
		inflight = flag.Int("inflight", 0, "max concurrently served requests per v2 connection (0 = default)")
		admin    = flag.String("admin", "", "serve /-/metrics, /-/healthz, and /debug/pprof/ on this HTTP address (empty disables; keep it off public networks)")
		statKick = flag.Duration("statusEvery", 30*time.Second, "status print interval (0 disables)")

		detect    = flag.Bool("detect", false, "run the SWIM-style failure detector")
		probeIvl  = flag.Duration("probe-interval", 0, "gap between failure-detector probe rounds (0 = default 1s; implies -detect)")
		probeTmo  = flag.Duration("probe-timeout", 0, "timeout of one direct or indirect probe (0 = default 500ms; implies -detect)")
		suspicion = flag.Duration("suspicion", 0, "refutation window before a suspect's death commits (0 = default 4s; implies -detect)")
		indirect  = flag.Int("indirect-probes", 0, "peers asked to probe an unreachable target before suspicion (0 = default 3; implies -detect)")
		repair    = flag.String("repair", "", "run the autonomous repair daemon with this erasure code (null, xor, online, rs)")
		repRate   = flag.Int64("repair-rate", 0, "repair daemon byte/s budget (0 = default 32 MiB/s; requires -repair)")
	)
	flag.Parse()

	var opts []peerstripe.NodeOption
	if *detect {
		opts = append(opts, peerstripe.WithDetector())
	}
	if *probeIvl > 0 {
		opts = append(opts, peerstripe.WithProbeInterval(*probeIvl))
	}
	if *probeTmo > 0 {
		opts = append(opts, peerstripe.WithProbeTimeout(*probeTmo))
	}
	if *suspicion > 0 {
		opts = append(opts, peerstripe.WithSuspicionTimeout(*suspicion))
	}
	if *indirect > 0 {
		opts = append(opts, peerstripe.WithIndirectProbes(*indirect))
	}
	if *repair != "" {
		opts = append(opts, peerstripe.WithRepair(*repair))
	}
	if *repRate > 0 {
		opts = append(opts, peerstripe.WithRepairRate(*repRate))
	}

	n, err := peerstripe.ListenAndServe(*listen, *capacity, *seed, *name, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer n.Close()
	n.SetMaxInflight(*inflight)
	fmt.Printf("psnode %s listening on %s (capacity %d bytes, ring size %d)\n",
		n.ID(), n.Addr(), *capacity, n.RingSize())

	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("admin listen %s: %v", *admin, err)
		}
		defer aln.Close()
		go http.Serve(aln, n.AdminHandler()) //nolint:errcheck
		fmt.Printf("admin endpoints on http://%s/-/metrics (metrics, healthz, pprof)\n", aln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *statKick > 0 {
		ticker := time.NewTicker(*statKick)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				alive, suspect, dead := 0, 0, 0
				for _, m := range n.Members() {
					switch m.State {
					case "suspect":
						suspect++
					case "dead":
						dead++
					default:
						alive++
					}
				}
				fmt.Printf("status: ring=%d blocks=%d used=%d members=%d/%d/%d (alive/suspect/dead) repairQueue=%d\n",
					n.RingSize(), n.Blocks(), n.Used(), alive, suspect, dead, n.RepairQueue())
			case <-stop:
				fmt.Println("shutting down")
				return
			}
		}
	}
	<-stop
	fmt.Println("shutting down")
}
