package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestExtractSurface(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "lib.go", `package lib

import "time"

// Exported surface.
const Answer = 42

var Default = time.Second

type Public struct {
	Visible int
	hidden  string
}

type secret struct{ X int }

func Do(a int, b string) (bool, error) { return false, nil }

func (p *Public) Method(d time.Duration) {}

func (s *secret) Hidden() {}

func internal() {}
`)
	writeFixture(t, dir, "lib_test.go", `package lib

func TestOnly() {} // must not appear: test file
`)

	lines, err := extract(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(lines, "\n")
	for _, w := range []string{
		"lib: const Answer = 42",
		"lib: var Default = time.Second",
		"lib: type Public struct { Visible int }",
		"lib: func Do(int, string) (bool, error)",
		"lib: method (*Public) Method(time.Duration)",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("surface lacks %q:\n%s", w, got)
		}
	}
	for _, banned := range []string{"hidden", "secret", "internal", "TestOnly"} {
		if strings.Contains(got, banned) {
			t.Errorf("surface leaks unexported %q:\n%s", banned, got)
		}
	}
}

// TestExtractStableAcrossParamRenames pins the normalization contract:
// renaming a parameter is not an API change.
func TestExtractStableAcrossParamRenames(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	writeFixture(t, a, "l.go", "package lib\nfunc F(x int, y []byte) error { return nil }\n")
	writeFixture(t, b, "l.go", "package lib\nfunc F(renamed int, alsoRenamed []byte) error { return nil }\n")
	la, err := extract(a)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := extract(b)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(la, "\n") != strings.Join(lb, "\n") {
		t.Fatalf("param rename changed the surface:\n%v\nvs\n%v", la, lb)
	}
}
