// Command apicheck is the public-API compatibility gate: it extracts
// the exported surface of a Go package (every exported const, var,
// type, exported struct field, interface method, function, and method
// with its full signature) as a sorted, normalized text form and
// compares it against a checked-in baseline.
//
//	apicheck -dir . -baseline api/peerstripe.txt        # gate (CI)
//	apicheck -dir . -baseline api/peerstripe.txt -write # accept changes
//
// Any drift fails the gate with a line diff. That makes an
// incompatible change impossible to ship silently: the committer must
// regenerate the baseline (-write) — a reviewable diff — and note the
// change in CHANGES.md. The extractor is deliberately dependency-free
// (go/ast + go/printer only) so the gate runs anywhere the toolchain
// does.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		dir      = flag.String("dir", ".", "package directory to extract")
		baseline = flag.String("baseline", "api/peerstripe.txt", "baseline surface file")
		write    = flag.Bool("write", false, "rewrite the baseline instead of checking")
	)
	flag.Parse()

	surface, err := extract(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	current := strings.Join(surface, "\n") + "\n"

	if *write {
		if err := os.WriteFile(*baseline, []byte(current), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		fmt.Printf("apicheck: wrote %s (%d declarations)\n", *baseline, len(surface))
		return
	}

	want, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: no baseline %s (%v)\nRun `go run ./cmd/apicheck -write` to create it.\n", *baseline, err)
		os.Exit(1)
	}
	if string(want) == current {
		fmt.Printf("apicheck: %s matches the exported surface (%d declarations)\n", *baseline, len(surface))
		return
	}

	fmt.Fprintf(os.Stderr, "apicheck: public API surface drifted from %s\n\n", *baseline)
	printDiff(os.Stderr, strings.Split(strings.TrimRight(string(want), "\n"), "\n"), surface)
	fmt.Fprintf(os.Stderr, "\nIf the change is intentional, regenerate the baseline with\n"+
		"`go run ./cmd/apicheck -write -baseline %s` and describe the API\nchange in CHANGES.md in the same commit.\n", *baseline)
	os.Exit(1)
}

// printDiff emits a minimal line diff: baseline-only lines as '-',
// surface-only lines as '+'.
func printDiff(w *os.File, want, got []string) {
	inWant := make(map[string]bool, len(want))
	for _, l := range want {
		inWant[l] = true
	}
	inGot := make(map[string]bool, len(got))
	for _, l := range got {
		inGot[l] = true
	}
	for _, l := range want {
		if !inGot[l] {
			fmt.Fprintf(w, "- %s\n", l)
		}
	}
	for _, l := range got {
		if !inWant[l] {
			fmt.Fprintf(w, "+ %s\n", l)
		}
	}
}

// extract parses the package in dir (tests excluded) and returns its
// exported surface as sorted normalized declaration lines.
func extract(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var pkg *ast.Package
	for name, p := range pkgs {
		if !strings.HasSuffix(name, "_test") && name != "main" {
			pkg = p
		}
	}
	if pkg == nil {
		return nil, fmt.Errorf("no library package in %s", dir)
	}

	var lines []string
	// Iterate files in name order for determinism (map order varies).
	var names []string
	for fn := range pkg.Files {
		names = append(names, fn)
	}
	sort.Strings(names)
	for _, fn := range names {
		for _, decl := range pkg.Files[fn].Decls {
			lines = append(lines, declLines(fset, pkg.Name, decl)...)
		}
	}
	sort.Strings(lines)
	return dedupe(lines), nil
}

func dedupe(in []string) []string {
	out := in[:0]
	var prev string
	for i, l := range in {
		if i == 0 || l != prev {
			out = append(out, l)
		}
		prev = l
	}
	return out
}

// declLines renders one top-level declaration's exported parts.
func declLines(fset *token.FileSet, pkg string, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		kind, recv := "func", ""
		if d.Recv != nil && len(d.Recv.List) > 0 {
			rt := typeName(d.Recv.List[0].Type)
			if !ast.IsExported(strings.TrimPrefix(rt, "*")) {
				return nil
			}
			kind, recv = "method", "("+rt+") "
		}
		sig := strings.TrimPrefix(render(fset, stripFuncType(d.Type)), "func")
		return []string{fmt.Sprintf("%s: %s %s%s%s", pkg, kind, recv, d.Name.Name, sig)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				filtered := filterType(s.Type)
				out = append(out, fmt.Sprintf("%s: type %s %s", pkg, s.Name.Name, render(fset, filtered)))
			case *ast.ValueSpec:
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				for i, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					line := fmt.Sprintf("%s: %s %s", pkg, kind, name.Name)
					if s.Type != nil {
						line += " " + render(fset, s.Type)
					}
					if i < len(s.Values) {
						line += " = " + render(fset, s.Values[i])
					}
					out = append(out, line)
				}
			}
		}
		return out
	}
	return nil
}

// stripFuncType drops parameter names, keeping only the types — a
// rename is not an API change.
func stripFuncType(ft *ast.FuncType) *ast.FuncType {
	cp := *ft
	cp.Params = stripFieldNames(ft.Params)
	cp.Results = stripFieldNames(ft.Results)
	return &cp
}

func stripFieldNames(fl *ast.FieldList) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out.List = append(out.List, &ast.Field{Type: f.Type})
		}
	}
	return out
}

// filterType removes unexported members from struct and interface
// types; other type expressions pass through.
func filterType(t ast.Expr) ast.Expr {
	switch tt := t.(type) {
	case *ast.StructType:
		cp := *tt
		cp.Fields = &ast.FieldList{}
		for _, f := range tt.Fields.List {
			if len(f.Names) == 0 { // embedded
				if ast.IsExported(strings.TrimPrefix(typeName(f.Type), "*")) {
					cp.Fields.List = append(cp.Fields.List, &ast.Field{Type: f.Type})
				}
				continue
			}
			var kept []*ast.Ident
			for _, n := range f.Names {
				if n.IsExported() {
					kept = append(kept, ast.NewIdent(n.Name))
				}
			}
			if len(kept) > 0 {
				cp.Fields.List = append(cp.Fields.List, &ast.Field{Names: kept, Type: f.Type})
			}
		}
		return &cp
	case *ast.InterfaceType:
		cp := *tt
		cp.Methods = &ast.FieldList{}
		for _, m := range tt.Methods.List {
			if len(m.Names) == 0 || m.Names[0].IsExported() {
				cp.Methods.List = append(cp.Methods.List, m)
			}
		}
		return &cp
	case *ast.FuncType:
		return stripFuncType(tt)
	}
	return t
}

// typeName returns the bare name of a (possibly pointered) type expr.
func typeName(t ast.Expr) string {
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.StarExpr:
		return "*" + typeName(tt.X)
	case *ast.IndexExpr: // generic receiver
		return typeName(tt.X)
	case *ast.SelectorExpr:
		return typeName(tt.X) + "." + tt.Sel.Name
	}
	return ""
}

// render prints a node and collapses it to one whitespace-normalized
// line, so formatting churn cannot fail the gate.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
