package peerstripe_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"peerstripe"
	"peerstripe/internal/telemetry"
)

// TestClientMetricsReconcile drives a scripted workload through a live
// ring and checks the client's telemetry snapshot against it: store and
// fetch latency counts match the operations issued, the wire-pool
// counters moved, and the Prometheus exposition is well-formed.
func TestClientMetricsReconcile(t *testing.T) {
	_, seed := testRing(t, 4, 1<<30)
	c := dialTest(t, seed, peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))

	const stores = 3
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 200<<10)
	rng.Read(data)
	for i := 0; i < stores; i++ {
		name := fmt.Sprintf("met-%d", i)
		if _, err := c.StoreBytes(context.Background(), name, data); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		f, err := c.Open(context.Background(), fmt.Sprintf("met-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(io.NewSectionReader(f, 0, f.Size()))
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("fetched bytes differ")
		}
	}

	m := c.Metrics()
	if got := m.Latencies["ps_client_store_seconds"].Count; got != stores {
		t.Errorf("store latency count = %d, want %d", got, stores)
	}
	if lat := m.Latencies["ps_client_store_seconds"]; lat.P50 <= 0 || lat.Max < lat.P50 {
		t.Errorf("store latency quantiles implausible: %+v", lat)
	}
	if got := m.Latencies["ps_client_fetch_seconds"].Count; got < 1 {
		t.Errorf("fetch latency count = %d, want >= 1", got)
	}
	if m.Counters["ps_client_dials_total"] < 1 {
		t.Errorf("dials = %d, want >= 1", m.Counters["ps_client_dials_total"])
	}
	if m.Counters["ps_client_bytes_out_total"] < int64(stores*len(data)) {
		t.Errorf("bytes out = %d, want >= %d", m.Counters["ps_client_bytes_out_total"], stores*len(data))
	}
	// The cache mirrors agree with the CacheStats surface.
	cs := c.CacheStats()
	if got := m.Counters["ps_cache_misses_total"]; got != cs.Misses {
		t.Errorf("cache misses mirror = %d, CacheStats = %d", got, cs.Misses)
	}
	if got := m.Gauges["ps_cache_max_bytes"]; got != cs.MaxBytes {
		t.Errorf("cache max mirror = %d, CacheStats = %d", got, cs.MaxBytes)
	}

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ValidateText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("client exposition invalid: %v\n%s", err, buf.String())
	}
	if samples == 0 {
		t.Fatal("client exposition empty")
	}
	for _, want := range []string{"ps_client_calls_total", "ps_cache_hits_total", "ps_client_store_seconds_bucket"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// publicRing starts n public Nodes with fast detector knobs and the
// repair daemon, waits for the membership view to converge, and
// returns them with the seed address.
func publicRing(t *testing.T, n int) []*peerstripe.Node {
	t.Helper()
	opts := []peerstripe.NodeOption{
		peerstripe.WithProbeInterval(40 * time.Millisecond),
		peerstripe.WithProbeTimeout(150 * time.Millisecond),
		peerstripe.WithSuspicionTimeout(500 * time.Millisecond),
		peerstripe.WithIndirectProbes(2),
		peerstripe.WithRepair("xor"),
	}
	nodes := make([]*peerstripe.Node, n)
	seed := ""
	for i := range nodes {
		nd, err := peerstripe.ListenAndServe("127.0.0.1:0", 1<<30, seed, fmt.Sprintf("obs-%d", i), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if seed == "" {
			seed = nd.Addr()
		}
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, nd := range nodes {
			if nd.RingSize() != n {
				converged = false
			}
		}
		if converged {
			return nodes
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("public ring did not converge")
	return nil
}

// scrape GETs one admin endpoint and returns status and body.
func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminEndpointsLiveRing is the end-to-end observability check: a
// live loopback ring under an admin listener must serve /-/metrics
// text that a Prometheus parser accepts and that reconciles with a
// scripted workload — stored files show up as node ops and used bytes,
// and killing a node moves the death and repair counters on the
// survivors.
func TestAdminEndpointsLiveRing(t *testing.T) {
	if testing.Short() {
		t.Skip("live ring integration test")
	}
	const n = 4
	nodes := publicRing(t, n)

	admin := httptest.NewServer(nodes[0].AdminHandler())
	defer admin.Close()

	if code, body := scrape(t, admin.URL+"/-/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _ := scrape(t, admin.URL+"/debug/pprof/"); code != 200 {
		t.Fatalf("pprof index = %d", code)
	}

	c := dialTest(t, nodes[0].Addr(), peerstripe.WithCode("xor"), peerstripe.WithChunkCap(32<<10))
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 128<<10)
	rng.Read(data)
	const stores, fetches = 3, 2
	for i := 0; i < stores; i++ {
		if _, err := c.StoreBytes(context.Background(), fmt.Sprintf("obs-file-%d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < fetches; i++ {
		f, err := c.Open(context.Background(), fmt.Sprintf("obs-file-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadAll(io.NewSectionReader(f, 0, f.Size())); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	code, body := scrape(t, admin.URL+"/-/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	samples, err := telemetry.ValidateText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("node exposition invalid: %v", err)
	}
	if samples == 0 {
		t.Fatal("node exposition empty")
	}
	for _, want := range []string{"ps_node_ops_total", "ps_node_used_bytes", "ps_detect_probes_total", "ps_repair_queue_depth"} {
		if !strings.Contains(body, want) {
			t.Errorf("node exposition missing %s", want)
		}
	}
	// The workload reached this node: the scripted stores spread blocks
	// across every member of a 4-node xor ring.
	m := nodes[0].Metrics()
	if m.Latencies["ps_node_handle_seconds"].Count < 1 {
		t.Error("node handled no requests after workload")
	}
	if got, want := m.Gauges["ps_node_used_bytes"], nodes[0].Used(); got != want {
		t.Errorf("used bytes gauge = %d, Node.Used() = %d", got, want)
	}

	// Kill a node; survivors must commit the death and the repair
	// counters (mirrors of RepairReport) must move on whichever
	// survivor holds affected allocation tables.
	nodes[n-1].Close()
	deadline := time.Now().Add(20 * time.Second)
	repaired := false
	for time.Now().Before(deadline) && !repaired {
		for _, nd := range nodes[:n-1] {
			mm := nd.Metrics()
			rpt := nd.RepairReport()
			if mm.Counters["ps_repair_files_repaired_total"] > 0 &&
				mm.Counters["ps_detect_deaths_total"] > 0 &&
				int(mm.Counters["ps_repair_files_repaired_total"]) <= rpt.FilesRepaired {
				repaired = true
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !repaired {
		t.Fatal("no survivor reported a committed death plus completed repairs")
	}

	// Post-repair scrape still parses and now shows detector activity.
	_, body = scrape(t, admin.URL+"/-/metrics")
	if _, err := telemetry.ValidateText(strings.NewReader(body)); err != nil {
		t.Fatalf("post-repair exposition invalid: %v", err)
	}
	if !strings.Contains(body, "ps_detect_deaths_total") {
		t.Error("post-repair exposition missing ps_detect_deaths_total")
	}
}
