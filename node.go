package peerstripe

import (
	"fmt"

	"peerstripe/internal/ids"
	"peerstripe/internal/node"
)

// Node is one running storage node, contributing capacity to a ring
// and serving both wire protocol versions (multiplexed v2 with
// streaming transfers, single-shot v1). Create one with ListenAndServe.
type Node struct {
	s *node.Server
}

// ListenAndServe starts a storage node on addr (use "host:0" for an
// ephemeral port) contributing capacity bytes. A non-empty seed joins
// the ring through that member; an empty seed starts a new ring. A
// non-empty name gives the node a stable ring identity across
// restarts; otherwise the identity derives from the listen address.
//
// The node serves until Close. It is the same server the psnode
// command runs; embedding programs and test harnesses use it to form
// in-process rings.
func ListenAndServe(addr string, capacity int64, seed, name string) (*Node, error) {
	var s *node.Server
	var err error
	if name != "" {
		s, err = node.NewServerID(addr, ids.FromName("node:"+name), capacity, seed)
	} else {
		s, err = node.NewServer(addr, capacity, seed)
	}
	if err != nil {
		return nil, fmt.Errorf("peerstripe: %w", err)
	}
	return &Node{s: s}, nil
}

// Addr returns the node's listen address — what other nodes and
// clients dial.
func (n *Node) Addr() string { return n.s.Addr() }

// ID returns the node's ring identifier in short printable form.
func (n *Node) ID() string { return n.s.ID.Short() }

// RingSize returns the node's current membership view size.
func (n *Node) RingSize() int { return n.s.RingSize() }

// Used returns bytes currently stored on the node.
func (n *Node) Used() int64 { return n.s.Used() }

// Blocks returns the number of blocks the node holds.
func (n *Node) Blocks() int { return n.s.NumBlocks() }

// SetMaxInflight bounds concurrently served requests per multiplexed
// connection (0 restores the default). Connections accepted after the
// call pick up the new bound.
func (n *Node) SetMaxInflight(max int) { n.s.SetMaxInflight(max) }

// Close stops serving and discards the node's blocks, as when a
// desktop departs the pool.
func (n *Node) Close() error { return n.s.Close() }
