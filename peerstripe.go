// Package peerstripe is the public, embeddable face of the PeerStripe
// contributory storage system: files striped into capacity-probed
// chunks across a ring of storage nodes, each chunk protected by
// per-chunk erasure coding, readable in ranges without touching
// unrelated chunks, and repairable after node loss (Miller, Butt &
// Butler, IPDPS'08).
//
// The package wraps the internal wire/node/core layers behind a small,
// context-first surface:
//
//	client, err := peerstripe.Dial(ctx, "10.0.0.1:7001",
//		peerstripe.WithWorkers(8), peerstripe.WithHedgeDelay(50*time.Millisecond))
//	...
//	info, err := client.Store(ctx, "dataset.bin", reader, size)
//	f, err := client.Open(ctx, "dataset.bin")        // io.ReadSeekCloser + io.ReaderAt
//	n, err := f.ReadAt(buf, 3<<30)                   // fetches only the chunks the range covers
//
// Store streams: it plans chunk sizes up front (core.PlanChunkSizes),
// then reads, erasure-codes, and uploads one chunk at a time, so peak
// memory is a small multiple of the chunk size no matter how large the
// file is. On the wire, blocks larger than one frame segment move as
// bounded streaming exchanges (OpStoreStream/OpFetchStream), with
// automatic fallback to single-frame transfers against pre-streaming
// nodes — mixed-version rings keep working.
//
// Every operation takes a context.Context and honors cancellation
// end to end: mid-transfer cancel aborts the RPC waits, the hedged
// fetch waves, and the coding worker pools promptly, returning
// context.Canceled (or context.DeadlineExceeded). A cancelled Store
// may leave already-placed blocks behind; they are orphans — no CAT
// references them — and do not affect a later re-store of the name.
//
// A Client's configuration is frozen at Dial time via functional
// options; there are no mutable knobs, so concurrent use is safe by
// construction. All Client and File methods are safe for concurrent
// use.
package peerstripe

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/node"
)

// Error classification; match with errors.Is.
var (
	// ErrNotFound reports that the named file (or a required block)
	// was absent from every node that should hold it.
	ErrNotFound = node.ErrNotFound
	// ErrRingUnavailable reports that the ring could not be reached at
	// all: a dead seed, dial failures, or no surviving member.
	ErrRingUnavailable = node.ErrRingUnavailable
)

// Client is a handle on a PeerStripe ring. Create one with Dial; it is
// safe for concurrent use and its configuration is immutable.
type Client struct {
	c    *node.Client
	opts options
	// cache is the client-wide decoded-chunk LRU with per-chunk
	// singleflight, shared by every File the client opens and by the
	// ranged-read paths underneath (see WithChunkCache).
	cache *chunkCache
}

// Dial connects to a ring through any member's address and returns a
// configured client. ctx bounds the bootstrap (membership pull); the
// returned client is not tied to it. Close releases the client's
// pooled connections.
func Dial(ctx context.Context, contact string, opts ...Option) (*Client, error) {
	o, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	code, err := core.CodeFor(o.code, o.schedule)
	if err != nil {
		return nil, fmt.Errorf("peerstripe: %w", err)
	}
	cache := newChunkCache(o.chunkCacheBytes())
	o.cfg.ChunkCache = cache
	nc, err := node.NewClientCfg(ctx, contact, code, o.cfg)
	if err != nil {
		return nil, fmt.Errorf("peerstripe: dial %s: %w", contact, err)
	}
	cache.registerMetrics(nc.Telemetry())
	return &Client{c: nc, opts: o, cache: cache}, nil
}

// Close releases the client's pooled connections. Operations after
// Close fail.
func (c *Client) Close() error {
	c.c.Close()
	return nil
}

// FileInfo describes a stored file.
type FileInfo struct {
	// Name is the ring-wide file name.
	Name string
	// Size is the file's logical size in bytes.
	Size int64
	// Chunks is the number of chunk rows in the file's allocation
	// table, including zero-sized placement retries.
	Chunks int
}

// Store streams size bytes from r into the ring under name and returns
// the stored file's description. Chunk sizes are planned up front with
// core.PlanChunkSizes against the client's chunk cap, and the file is
// read, erasure-coded, and uploaded one chunk at a time — peak memory
// is a small multiple of the chunk size, never the file size. Each
// planned chunk is capacity-probed before its bytes are read; refusals
// become zero-sized retries exactly as in the §4.3 store procedure.
//
// Cancelling ctx aborts the transfer promptly with the ctx error.
// Already-placed blocks remain as unreferenced orphans and do not
// affect a later re-store of the same name.
func (c *Client) Store(ctx context.Context, name string, r io.Reader, size int64) (*FileInfo, error) {
	if size < 0 {
		return nil, fmt.Errorf("peerstripe: store %q: negative size %d", name, size)
	}
	plan := core.PlanChunkSizes(size, c.opts.maxChunk())
	cat, err := c.c.StoreReader(ctx, name, r, plan)
	if err != nil {
		return nil, fmt.Errorf("peerstripe: store %q: %w", name, err)
	}
	// The name's bytes just changed: cached chunks are stale, and so
	// are any hot-read replicas a promotion placed — drop both. The
	// demote is best-effort for storage only — readers verify the hot
	// marker's CAT hash, so a leftover replica is an unreachable
	// orphan, never a correctness hazard — and it runs detached from
	// the caller's cancellation (with its own backstop deadline) so a
	// request aborted right after the store still cleans up.
	c.cache.invalidate(name)
	demoteCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), time.Minute)
	defer cancel()
	c.c.DemoteCtx(demoteCtx, name) //nolint:errcheck
	return &FileInfo{Name: name, Size: cat.FileSize(), Chunks: cat.NumChunks()}, nil
}

// StoreBytes is Store for in-memory data.
func (c *Client) StoreBytes(ctx context.Context, name string, data []byte) (*FileInfo, error) {
	return c.Store(ctx, name, bytes.NewReader(data), int64(len(data)))
}

// Stat returns the stored file's description without fetching its
// data (only the chunk allocation table is read).
func (c *Client) Stat(ctx context.Context, name string) (*FileInfo, error) {
	cat, err := c.c.LoadCATCtx(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("peerstripe: stat %q: %w", name, err)
	}
	return &FileInfo{Name: name, Size: cat.FileSize(), Chunks: cat.NumChunks()}, nil
}

// Delete removes the named file: every encoded block, every CAT
// replica, and any hot-read chunk replicas a promotion placed.
func (c *Client) Delete(ctx context.Context, name string) error {
	c.cache.invalidate(name)
	if err := c.c.DeleteFileCtx(ctx, name); err != nil {
		return fmt.Errorf("peerstripe: delete %q: %w", name, err)
	}
	return nil
}

// RepairStats reports one Repair pass.
type RepairStats struct {
	// ChunksScanned counts non-empty chunks examined.
	ChunksScanned int
	// BlocksMissing counts encoded blocks found absent.
	BlocksMissing int
	// BlocksRecreated counts blocks re-encoded and stored.
	BlocksRecreated int
	// BytesRecreated counts the bytes of those recreated blocks.
	BytesRecreated int64
	// CATReplicasRecreated counts restored CAT copies.
	CATReplicasRecreated int
	// ChunksLost counts chunks below the code's decode threshold;
	// their redundancy cannot be restored.
	ChunksLost int
}

// Repair restores the named file's redundancy after node loss: the
// membership view is first pruned of unreachable nodes (the protocol
// propagates joins, not departures), then every chunk is scanned,
// missing blocks are re-encoded from the survivors, and absent CAT
// replicas are restored.
func (c *Client) Repair(ctx context.Context, name string) (RepairStats, error) {
	if _, err := c.c.PruneRingCtx(ctx); err != nil {
		return RepairStats{}, fmt.Errorf("peerstripe: repair %q: %w", name, err)
	}
	st, err := c.c.RepairCtx(ctx, name)
	if err != nil {
		return RepairStats(st), fmt.Errorf("peerstripe: repair %q: %w", name, err)
	}
	return RepairStats(st), nil
}

// Prune probes every member of the current view and drops the
// unreachable ones, returning how many were shed. The membership
// protocol propagates joins but not departures, so maintenance
// operations against a ring that lost nodes (Delete after a failure,
// manual inspection) call Prune first; Repair does it implicitly.
func (c *Client) Prune(ctx context.Context) (int, error) {
	dropped, err := c.c.PruneRingCtx(ctx)
	if err != nil {
		return dropped, fmt.Errorf("peerstripe: %w", err)
	}
	return dropped, nil
}

// Refresh re-pulls the membership view from the contact node.
func (c *Client) Refresh(ctx context.Context) error {
	if err := c.c.RefreshCtx(ctx); err != nil {
		return fmt.Errorf("peerstripe: %w", err)
	}
	return nil
}

// Nodes returns the addresses in the client's current membership view.
func (c *Client) Nodes() []string {
	ring := c.c.Ring()
	out := make([]string, len(ring))
	for i, n := range ring {
		out[i] = n.Addr
	}
	return out
}

// NodeStat is one ring member's storage status, including what its
// self-healing subsystems report: how many members it sees in each
// liveness state and its repair backlog. The membership and repair
// fields are zero against servers predating the failure detector.
type NodeStat struct {
	Addr     string
	Capacity int64 // contributed bytes
	Used     int64 // bytes currently held
	Blocks   int   // blocks currently held

	Alive   int // members this node sees alive (itself included)
	Suspect int // members under suspicion, still in placement
	Dead    int // committed deaths remembered by this node

	// RepairQueue counts files the node's repair daemon has queued or
	// currently in flight.
	RepairQueue int
}

// StatNode queries one ring member's storage status.
func (c *Client) StatNode(ctx context.Context, addr string) (NodeStat, error) {
	st, err := c.c.StatNodeCtx(ctx, addr)
	if err != nil {
		return NodeStat{}, fmt.Errorf("peerstripe: stat node %s: %w", addr, err)
	}
	return NodeStat{
		Addr: addr, Capacity: st.Capacity, Used: st.Used, Blocks: st.Blocks,
		Alive: st.Alive, Suspect: st.Suspect, Dead: st.Dead,
		RepairQueue: st.RepairQueue,
	}, nil
}
