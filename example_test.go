package peerstripe_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"

	"peerstripe"
)

// Example_quickstart forms a small in-process ring, streams a file in,
// and reads it back — the minimal end-to-end use of the public API.
func Example_quickstart() {
	ctx := context.Background()

	// Start a three-node ring (in production these are psnode
	// processes on separate machines; the API is identical).
	seed := ""
	for i := 0; i < 3; i++ {
		n, err := peerstripe.ListenAndServe("127.0.0.1:0", 1<<30, seed, "")
		if err != nil {
			log.Fatal(err)
		}
		if seed == "" {
			seed = n.Addr()
		}
		defer n.Close()
	}

	client, err := peerstripe.Dial(ctx, seed, peerstripe.WithCode("xor"))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Store streams from any io.Reader; the file is never buffered
	// whole.
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	info, err := client.Store(ctx, "hello.dat", bytes.NewReader(data), int64(len(data)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d bytes\n", info.Size)

	f, err := client.Open(ctx, "hello.dat")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes, intact: %v\n", len(got), bytes.Equal(got, data))
	// Output:
	// stored 1048576 bytes
	// read back 1048576 bytes, intact: true
}

// Example_rangeRead reads a byte range out of a striped file through
// the io.ReaderAt surface: only the chunks the range covers are
// fetched and decoded.
func Example_rangeRead() {
	ctx := context.Background()
	seed := ""
	for i := 0; i < 3; i++ {
		n, err := peerstripe.ListenAndServe("127.0.0.1:0", 1<<30, seed, "")
		if err != nil {
			log.Fatal(err)
		}
		if seed == "" {
			seed = n.Addr()
		}
		defer n.Close()
	}

	// A small chunk cap gives the file many chunks, so the ranged
	// read's locality is visible.
	client, err := peerstripe.Dial(ctx, seed,
		peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	data := make([]byte, 512<<10)
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := client.Store(ctx, "ranged.dat", bytes.NewReader(data), int64(len(data))); err != nil {
		log.Fatal(err)
	}

	f, err := client.Open(ctx, "ranged.dat")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	buf := make([]byte, 4096)
	if _, err := f.ReadAt(buf, 300<<10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [307200, 311296) intact: %v\n", bytes.Equal(buf, data[300<<10:300<<10+4096]))
	// Output:
	// range [307200, 311296) intact: true
}
