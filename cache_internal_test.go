package peerstripe

import (
	"bytes"
	"context"
	"testing"
)

// TestCacheVersionedKeysIsolateLayouts pins that the cache key carries
// the CAT version: the same (name, chunk) under a different version is
// a miss, never a hit on the other layout's bytes — including when the
// stale entry's length differs from the new layout's chunk (the shape
// that used to panic ReadAt's chunk[lo:hi]).
func TestCacheVersionedKeysIsolateLayouts(t *testing.T) {
	c := newChunkCache(1 << 20)
	ctx := context.Background()

	old := []byte("old") // note: shorter than the new layout's chunk
	got, err := c.chunk(ctx, "f", 1, 0, int64(len(old)), func() ([]byte, error) { return old, nil })
	if err != nil || !bytes.Equal(got, old) {
		t.Fatalf("seed read: %q, %v", got, err)
	}

	fresh := []byte("fresh") // same name+chunk, new version, new length
	fetched := false
	got, err = c.chunk(ctx, "f", 2, 0, int64(len(fresh)), func() ([]byte, error) {
		fetched = true
		return fresh, nil
	})
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("versioned read: %q, %v", got, err)
	}
	if !fetched {
		t.Fatal("new version served from the old version's cache entry")
	}
}

// TestCacheHitLengthMismatchRefetches pins the defensive length guard
// on the hit path: an entry whose bytes do not match the caller's CAT
// row length (unreachable under versioned keys, but it must never
// panic a read) is dropped and refetched instead of served.
func TestCacheHitLengthMismatchRefetches(t *testing.T) {
	c := newChunkCache(1 << 20)
	key := chunkKey{name: "f", ver: 7, ci: 0}
	c.mu.Lock()
	c.storeLocked(key, []byte("abc"))
	c.mu.Unlock()

	want := []byte("hello")
	got, err := c.chunk(context.Background(), "f", 7, 0, int64(len(want)), func() ([]byte, error) { return want, nil })
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read: %q, %v", got, err)
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	c.mu.Unlock()
	if !ok || !bytes.Equal(el.Value.(*cacheEntry).data, want) {
		t.Fatal("mismatched entry not replaced by the refetched bytes")
	}
}

// TestCacheInvalidateDoomsInflightFetch pins the invalidate/flight
// race: a fetch that started before invalidate and completes after it
// must not repopulate the cache — its bytes belong to the layout the
// invalidate just retired. The leader (and any follower already
// waiting) still gets the bytes; they hold the old CAT, for which the
// result is consistent.
func TestCacheInvalidateDoomsInflightFetch(t *testing.T) {
	c := newChunkCache(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)

	go func() {
		got, err := c.chunk(context.Background(), "f", 1, 0, 4, func() ([]byte, error) {
			close(started)
			<-release
			return []byte("old!"), nil
		})
		if err == nil && !bytes.Equal(got, []byte("old!")) {
			err = context.Canceled // any sentinel: wrong bytes
		}
		done <- err
	}()

	<-started
	c.invalidate("f")
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("leader read across invalidate: %v", err)
	}

	c.mu.Lock()
	entries, size := len(c.entries), c.size
	c.mu.Unlock()
	if entries != 0 || size != 0 {
		t.Fatalf("doomed flight repopulated the cache: %d entries, %d bytes", entries, size)
	}
}
