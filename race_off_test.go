//go:build !race

package peerstripe_test

const raceEnabled = false
