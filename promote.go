package peerstripe

import (
	"context"
	"fmt"
)

// MaxHotCopies bounds the full-copy chunk replicas a Promote may
// place per chunk.
const MaxHotCopies = 8

// PromoteInfo reports one Promote pass.
type PromoteInfo struct {
	// Chunks is the number of non-empty chunks replicated.
	Chunks int
	// Copies is the full-copy replica count placed per chunk.
	Copies int
	// Bytes is the total replica bytes stored.
	Bytes int64
}

// Promote scales the named file for hot reads: it places copies
// (1..MaxHotCopies) full plaintext replicas of every chunk — ordinary
// blocks under the §4.2 naming convention, hashed to different owners
// than the coded blocks — and records the count in a marker so any
// client discovers the promotion. Reads of a promoted file fetch one
// replica block per chunk (rotating across the replica set, so a herd
// fans out over copies+ nodes) instead of fetching a decode wave and
// erasure-decoding; the coded blocks remain authoritative, so losing
// replicas costs read performance, never durability.
//
// Promotion is an explicit capacity trade: it spends
// fileSize × copies of ring storage. The HTTP gateway automates it
// for objects a request herd keeps hitting. Re-storing or deleting
// the name demotes it; Demote rolls it back by hand.
func (c *Client) Promote(ctx context.Context, name string, copies int) (PromoteInfo, error) {
	st, err := c.c.PromoteCtx(ctx, name, copies)
	if err != nil {
		return PromoteInfo{}, fmt.Errorf("peerstripe: promote %q: %w", name, err)
	}
	return PromoteInfo{Chunks: st.Chunks, Copies: st.Copies, Bytes: st.Bytes}, nil
}

// Demote removes the named file's hot-read chunk replicas and
// promotion marker. Demoting a file that was never promoted is a
// no-op. The erasure-coded blocks are untouched.
func (c *Client) Demote(ctx context.Context, name string) error {
	if _, err := c.c.DemoteCtx(ctx, name); err != nil {
		return fmt.Errorf("peerstripe: demote %q: %w", name, err)
	}
	return nil
}
