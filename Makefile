GO ?= go

.PHONY: build test bench vet all

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The benchmark set behind BENCH_PR1.json / docs/PERF.md.
bench:
	$(GO) test -run '^$$' -bench 'Table2|IOLibRead|Fig7' -benchmem -benchtime 1s .

vet:
	$(GO) vet ./...
