GO ?= go
# Per-target budget for the fuzz-smoke pass (the CI gate uses the
# default; raise it locally for a real fuzzing session).
FUZZTIME ?= 10s

.PHONY: build test bench vet all fmt-check race fuzz-smoke bench-smoke ci

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The benchmark set behind BENCH_PR1.json / BENCH_PR2.json / docs/PERF.md.
bench:
	$(GO) test -run '^$$' -bench 'Table2|IOLibRead|Fig7' -benchmem -benchtime 1s .

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# One invocation per target: `go test -fuzz` refuses a pattern that
# matches more than one fuzz test in a package.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzOnlineDecode$$' -fuzztime $(FUZZTIME) ./internal/erasure
	$(GO) test -run '^$$' -fuzz '^FuzzScheduleRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/erasure
	$(GO) test -run '^$$' -fuzz '^FuzzPoolOperations$$' -fuzztime $(FUZZTIME) ./internal/sim

# Every benchmark in every package, one iteration each: proves the perf
# surface still compiles and runs without paying for a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Mirrors the CI workflow (.github/workflows/ci.yml) locally, in the
# same order: lint, build, tests, race, fuzz-smoke, bench-smoke.
ci: fmt-check vet build test race fuzz-smoke bench-smoke
