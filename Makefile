GO ?= go
# bash + pipefail so a failing `go test` is not masked by a pipe
# consumer that exits 0 (bench-guard's benchguard, tee in CI).
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c
# Per-target budget for the fuzz-smoke pass (the CI gate uses the
# default; raise it locally for a real fuzzing session).
FUZZTIME ?= 10s

.PHONY: build test bench vet all fmt-check race fuzz-smoke bench-smoke \
	crossarch test-noasm test-kernels bench-guard live-path pipeline churn \
	gate obs api-check build-examples ci

# Scale of the self-healing churn harness (docs/RING.md). CI runs a
# reduced ring; raise locally for the full 50-node run.
CHURN_NODES ?= 24
CHURN_KILLS ?= 2

# Allowed throughput regression (percent) for the bench-guard gate.
# Raise it when benchmarking on hardware much slower than the machine
# that produced the committed baseline.
BENCH_GUARD_PCT ?= 25
# The live single-stream arms run a loopback ring on shared CI cores
# and show far more run-to-run spread than the coding kernels, so
# their floor is looser.
LIVE_GUARD_PCT ?= 45

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The benchmark set behind BENCH_PR1.json / BENCH_PR2.json / docs/PERF.md.
bench:
	$(GO) test -run '^$$' -bench 'Table2|IOLibRead|Fig7' -benchmem -benchtime 1s .

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# One invocation per target: `go test -fuzz` refuses a pattern that
# matches more than one fuzz test in a package.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzOnlineDecode$$' -fuzztime $(FUZZTIME) ./internal/erasure
	$(GO) test -run '^$$' -fuzz '^FuzzScheduleRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/erasure
	$(GO) test -run '^$$' -fuzz '^FuzzPoolOperations$$' -fuzztime $(FUZZTIME) ./internal/sim
	$(GO) test -run '^$$' -fuzz '^FuzzWireFrame$$' -fuzztime $(FUZZTIME) ./internal/wire

# The live data path under the race detector: the multi-node
# integration harness (concurrent clients + mid-transfer node kill +
# repair), the fault-injection proxy tests, and the wire
# protocol-compatibility suite — native and on the noasm portable
# kernels (docs/LIVE.md).
live-path:
	$(GO) test -race -run 'Live|Integration' ./...
	$(GO) test -tags noasm -race -run 'Live|Integration' ./...

# The streaming pipeline under the race detector and fault injection:
# windowed out-of-order staging, mixed-version fallback, the hedged
# read racing a source that stalls or dies mid-stream, the windowed
# store completing through a slow sink, and the per-source progress
# contract (replace the silent, spare the moving) — docs/LIVE.md
# "Streaming pipeline".
pipeline:
	$(GO) test -race -run 'StoreWindow|PreWindowRing|StalledSource|DeadSource|SlowSink|ProgressHedge' \
		./internal/node ./internal/core

# Self-healing ring under the race detector: SWIM failure detection,
# death gossip, and the autonomous repair daemon absorb a kill
# schedule with zero manual Repair/PruneRing calls (docs/RING.md).
churn:
	PS_CHURN_NODES=$(CHURN_NODES) PS_CHURN_KILLS=$(CHURN_KILLS) \
		$(GO) test -race -run 'ChurnSelfHealing' -v ./internal/integration

# The HTTP gateway under the race detector: psgate builds, and the
# gateway suite (Range matrix, conditional GETs, streaming PUT, herd
# singleflight, hot promotion) plus the File lifecycle and shared-cache
# tests run race-enabled against live loopback rings (docs/GATEWAY.md).
gate:
	$(GO) build ./cmd/psgate
	$(GO) test -race ./gateway
	$(GO) test -race -run 'UseAfterClose|Singleflight|CacheShared|CacheEviction|Promote' .

# Observability surface under the race detector: the telemetry package
# (bucket math, quantile accuracy vs a sorted-sample reference, merge
# associativity, alloc-free recording, concurrent hammer), then the
# admin/metrics endpoint suites — including the live loopback ring that
# stores a workload, kills a node, and requires the /-/metrics scrape to
# stay Prometheus-parseable while death and repair counters move
# (docs/OBSERVABILITY.md).
obs:
	$(GO) test -race -count=1 ./internal/telemetry
	$(GO) test -race -count=1 -run 'Metrics|AdminEndpoints' . ./gateway

# Every benchmark in every package, one iteration each: proves the perf
# surface still compiles and runs without paying for a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regression guard over the Table 2 coding arms: re-measure at a real
# benchtime and compare MB/s against the committed baseline JSON,
# failing on a >$(BENCH_GUARD_PCT)% drop (cmd/benchguard).
bench-guard:
	$(GO) test -run '^$$' -bench 'Table2Online' -benchtime 1s . \
		| $(GO) run ./cmd/benchguard -baseline BENCH_PR8.json -match 'Table2' -tol $(BENCH_GUARD_PCT)
	$(GO) test -run '^$$' -bench 'LiveStore(File|Stream)$$|LiveFetch(File|Stream)$$' -benchtime 1s ./internal/node \
		| $(GO) run ./cmd/benchguard -baseline BENCH_PR7.json -match 'Live' -tol $(LIVE_GUARD_PCT)
	$(GO) test -run '^$$' -bench 'Gateway' -benchtime 1s ./gateway \
		| $(GO) run ./cmd/benchguard -baseline BENCH_PR9.json -match 'Gateway' -tol $(LIVE_GUARD_PCT)

# Cross-architecture compile checks: the NEON assembly path must keep
# assembling and vetting (arm64), and the portable fallback must keep
# passing the full suite (-tags noasm).
crossarch:
	GOARCH=arm64 $(GO) build ./...
	GOARCH=arm64 $(GO) vet ./...
	GOARCH=arm64 $(GO) build -tags noasm ./...

test-noasm:
	$(GO) test -tags noasm ./...

# Kernel dispatch matrix: the erasure suite under every forced kernel
# tier (PS_KERNELS, see internal/erasure/kernels.go) plus the portable
# noasm build. Tiers absent on the host CPU (e.g. gfni on an arm64 or
# pre-Ice-Lake runner) fall back with a diagnostic rather than failing,
# and the per-tier cross-check tests skip cleanly — so this is safe on
# any hardware and exhaustive on hardware that has the features.
test-kernels:
	PS_KERNELS=scalar   $(GO) test -count=1 ./internal/erasure
	PS_KERNELS=portable $(GO) test -count=1 ./internal/erasure
	PS_KERNELS=avx2     $(GO) test -count=1 ./internal/erasure
	PS_KERNELS=avx512   $(GO) test -count=1 ./internal/erasure
	PS_KERNELS=gfni     $(GO) test -count=1 ./internal/erasure
	$(GO) test -tags noasm -count=1 ./internal/erasure

# Public-API compatibility gate: the exported surface of the
# peerstripe package must match the checked-in baseline. On an
# intentional change, regenerate with
# `go run ./cmd/apicheck -write` and note the change in CHANGES.md.
api-check:
	$(GO) run ./cmd/apicheck -dir . -baseline api/peerstripe.txt

# Every example program must keep compiling against the public API.
build-examples:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...

# Mirrors the CI workflow (.github/workflows/ci.yml) locally, in the
# same order: lint, API gate, build (incl. examples), tests (native,
# noasm, forced kernel tiers), cross-arch, race, live-path, pipeline,
# churn, gate, obs, fuzz-smoke, bench-smoke, bench-guard.
ci: fmt-check vet api-check build build-examples test test-noasm test-kernels crossarch race live-path pipeline churn gate obs fuzz-smoke bench-smoke bench-guard
