package peerstripe

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"peerstripe/internal/core"
	"peerstripe/internal/telemetry"
)

// chunkCache is the client-wide decoded-chunk cache: a byte-bounded
// LRU shared by every File the Client opens and by the ranged-read
// paths underneath (it implements core.ChunkCache). Entries are keyed
// on (file name, CAT hash, chunk index) — the hash versions the key,
// so bytes decoded under one stored layout can never satisfy a read
// against a re-stored name: the new CAT hashes differently and the old
// entries are simply unreachable. Each key also carries a singleflight
// slot so a thundering herd on one cold chunk performs exactly one
// fetch+decode — the herd's followers wait on the leader's flight and
// share its result.
//
// Cached slices are shared between the cache and every reader and are
// never written after insertion.
type chunkCache struct {
	max int64 // byte bound; 0 disables storage (singleflight still applies)

	mu      sync.Mutex
	entries map[chunkKey]*list.Element
	lru     *list.List // of *cacheEntry, most recent at front
	size    int64
	flights map[chunkKey]*flight

	hits      atomic.Int64
	misses    atomic.Int64
	decodes   atomic.Int64
	evictions atomic.Int64
}

// chunkKey identifies one decoded chunk of one stored layout: ver is
// the CAT hash of the layout the bytes were decoded under.
type chunkKey struct {
	name string
	ver  uint64
	ci   int
}

type cacheEntry struct {
	key  chunkKey
	data []byte
}

// flight is one in-progress fetch+decode; followers block on done.
// doomed (guarded by chunkCache.mu) marks a flight overtaken by an
// invalidate: its result is still valid for the readers already
// waiting — they hold the same CAT — but must not repopulate the
// cache the invalidate just cleared.
type flight struct {
	done   chan struct{}
	data   []byte
	err    error
	doomed bool
}

func newChunkCache(max int64) *chunkCache {
	return &chunkCache{
		max:     max,
		entries: make(map[chunkKey]*list.Element),
		lru:     list.New(),
		flights: make(map[chunkKey]*flight),
	}
}

// chunk returns the decoded bytes of the keyed chunk: from the cache,
// from a flight another reader already has in progress, or by running
// fetch as the singleflight leader. want is the chunk length the
// caller's CAT records; a cached entry of any other length is dropped
// and refetched rather than served (versioned keys make that
// unreachable in practice, but a mismatch must never panic a read).
// A follower whose leader failed with a context error — the leader's
// request was cancelled, not the chunk — takes over the fetch instead
// of inheriting the failure, so one aborted HTTP request never
// poisons the herd behind it.
func (c *chunkCache) chunk(ctx context.Context, name string, ver uint64, ci int, want int64, fetch func() ([]byte, error)) ([]byte, error) {
	key := chunkKey{name, ver, ci}
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*cacheEntry)
			if int64(len(e.data)) == want {
				c.lru.MoveToFront(el)
				data := e.data
				c.mu.Unlock()
				c.hits.Add(1)
				return data, nil
			}
			c.lru.Remove(el)
			delete(c.entries, key)
			c.size -= int64(len(e.data))
		}
		if fl, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-fl.done:
				if fl.err == nil {
					c.hits.Add(1)
					return fl.data, nil
				}
				if isContextErr(fl.err) && ctx.Err() == nil {
					continue // leader cancelled, we are not: take over
				}
				return nil, fl.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		fl := &flight{done: make(chan struct{})}
		c.flights[key] = fl
		c.mu.Unlock()

		c.misses.Add(1)
		data, err := fetch()
		if err == nil {
			c.decodes.Add(1)
		}
		c.mu.Lock()
		delete(c.flights, key)
		if err == nil && !fl.doomed {
			c.storeLocked(key, data)
		}
		c.mu.Unlock()
		fl.data, fl.err = data, err
		close(fl.done)
		return data, err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// storeLocked inserts (or refreshes) an entry and evicts from the LRU
// tail until the byte bound holds. Chunks larger than the whole bound
// are not cached.
func (c *chunkCache) storeLocked(key chunkKey, data []byte) {
	n := int64(len(data))
	if c.max <= 0 || n > c.max || n == 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.size += n - int64(len(e.data))
		e.data = data
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, data: data})
		c.size += n
	}
	for c.size > c.max {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.lru.Remove(tail)
		delete(c.entries, e.key)
		c.size -= int64(len(e.data))
		c.evictions.Add(1)
	}
}

// registerMetrics mirrors the cache's counters into the client's
// telemetry registry, so cache effectiveness shows up in Metrics()
// and the Prometheus exposition alongside the wire and codec metrics.
func (c *chunkCache) registerMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("ps_cache_hits_total", "Chunk reads served from the decoded-chunk cache or a joined in-flight decode.", c.hits.Load)
	reg.CounterFunc("ps_cache_misses_total", "Chunk reads that ran a fetch as the singleflight leader.", c.misses.Load)
	reg.CounterFunc("ps_cache_decodes_total", "Fetch+decode executions that succeeded.", c.decodes.Load)
	reg.CounterFunc("ps_cache_evictions_total", "Entries dropped to hold the cache byte bound.", c.evictions.Load)
	reg.GaugeFunc("ps_cache_bytes", "Decoded bytes currently held in the chunk cache.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.size
	})
	reg.GaugeFunc("ps_cache_max_bytes", "Configured chunk-cache byte bound (0 when disabled).", func() int64 { return c.max })
}

// invalidate drops every cached chunk of the named file, across every
// CAT version, and dooms the name's in-flight fetches so a flight that
// started before the invalidate cannot repopulate the cache after it —
// called when this client re-stores or deletes the name. (Versioned
// keys already hide old entries from readers of the new layout; the
// sweep reclaims their bytes instead of waiting on LRU pressure.)
func (c *chunkCache) invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.key.name == name {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.size -= int64(len(e.data))
		}
		el = next
	}
	for key, fl := range c.flights {
		if key.name == name {
			fl.doomed = true
		}
	}
}

// GetChunk implements core.ChunkCache for the decode paths underneath
// the public surface, keying on the caller's CAT hash. It is
// counter-silent: hits and misses are accounted once, at the File
// layer, not again per decode attempt.
func (c *chunkCache) GetChunk(cat *core.CAT, ci int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[chunkKey{cat.File, cat.Hash(), ci}]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).data, true
	}
	return nil, false
}

// PutChunk implements core.ChunkCache.
func (c *chunkCache) PutChunk(cat *core.CAT, ci int, data []byte) {
	c.mu.Lock()
	c.storeLocked(chunkKey{cat.File, cat.Hash(), ci}, data)
	c.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of the client's shared
// decoded-chunk cache (see WithChunkCache).
type CacheStats struct {
	// Hits counts chunk reads served without a fetch: straight from
	// the cache or by joining another reader's in-flight decode.
	Hits int64
	// Misses counts chunk reads that ran a fetch as the singleflight
	// leader.
	Misses int64
	// Decodes counts fetch+decode executions that succeeded — under a
	// thundering herd this stays at one per distinct chunk.
	Decodes int64
	// Evictions counts entries dropped to hold the byte bound.
	Evictions int64
	// Bytes is the decoded bytes currently held.
	Bytes int64
	// MaxBytes is the configured bound (0 when caching is disabled).
	MaxBytes int64
}

// CacheStats reports the client's shared decoded-chunk cache counters.
func (c *Client) CacheStats() CacheStats {
	cc := c.cache
	cc.mu.Lock()
	bytes := cc.size
	cc.mu.Unlock()
	return CacheStats{
		Hits:      cc.hits.Load(),
		Misses:    cc.misses.Load(),
		Decodes:   cc.decodes.Load(),
		Evictions: cc.evictions.Load(),
		Bytes:     bytes,
		MaxBytes:  cc.max,
	}
}
