package peerstripe_test

import (
	"context"
	"errors"
	"io"
	"os"
	"testing"

	"peerstripe"
)

// TestFileUseAfterClose pins the handle lifecycle: once Close returns,
// every subsequent operation — Read, ReadAt, Seek, and a second
// Close — fails with an error matching os.ErrClosed, instead of the
// old behavior of quietly reading on through the still-reachable CAT.
func TestFileUseAfterClose(t *testing.T) {
	_, seed := testRing(t, 3, 1<<30)
	c := dialTest(t, seed, peerstripe.WithCode("xor"))
	ctx := context.Background()

	if _, err := c.StoreBytes(ctx, "closed.dat", []byte("still here after close")); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open(ctx, "closed.dat")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}

	buf := make([]byte, 8)
	if _, err := f.Read(buf); !errors.Is(err, os.ErrClosed) {
		t.Errorf("Read after Close = %v, want os.ErrClosed", err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, os.ErrClosed) {
		t.Errorf("ReadAt after Close = %v, want os.ErrClosed", err)
	}
	if _, err := f.Seek(0, io.SeekStart); !errors.Is(err, os.ErrClosed) {
		t.Errorf("Seek after Close = %v, want os.ErrClosed", err)
	}
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Errorf("second Close = %v, want os.ErrClosed", err)
	}

	// The close is per-handle: a fresh Open on the same client still
	// reads the file.
	f2, err := c.Open(ctx, "closed.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got, err := io.ReadAll(f2)
	if err != nil || string(got) != "still here after close" {
		t.Fatalf("read after reopen: %q, %v", got, err)
	}
}
