package peerstripe

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/node"
)

// TestStaleHotMarkerIgnoredAfterRestore pins the content binding of
// hot promotion: when a re-store's best-effort demote never runs (here
// simulated by re-storing through the internal client, which is
// exactly the state a failed demote leaves), the surviving .HOT marker
// and full-copy replicas still describe the OLD bytes. The new layout
// has identical chunk extents — every stale replica matches the new
// chunk lengths — so before markers were bound to the CAT's content
// hash, readers served the old bytes. They must fall back to the
// coded path and return the new ones.
func TestStaleHotMarkerIgnoredAfterRestore(t *testing.T) {
	var servers []*node.Server
	seed := ""
	for i := 0; i < 4; i++ {
		s, err := node.NewServer("127.0.0.1:0", 1<<30, seed)
		if err != nil {
			t.Fatal(err)
		}
		if seed == "" {
			seed = s.Addr()
		}
		servers = append(servers, s)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, s := range servers {
			if s.RingSize() != len(servers) {
				converged = false
			}
		}
		if converged {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	const chunk = 64 << 10
	ctx := context.Background()
	c, err := Dial(ctx, seed, WithCode("xor"), WithChunkCap(chunk))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	v1 := make([]byte, 3*chunk)
	rand.New(rand.NewSource(21)).Read(v1)
	if _, err := c.StoreBytes(ctx, "stale.dat", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Promote(ctx, "stale.dat", 2); err != nil {
		t.Fatal(err)
	}

	// Re-store same-size different bytes through the internal client:
	// no demote, no cache invalidate — the marker and v1 replicas
	// survive, bound to v1's CAT hash.
	v2 := make([]byte, 3*chunk)
	rand.New(rand.NewSource(22)).Read(v2)
	plan := core.PlanChunkSizes(int64(len(v2)), c.opts.maxChunk())
	if _, err := c.c.StoreReader(ctx, "stale.dat", bytes.NewReader(v2), plan); err != nil {
		t.Fatal(err)
	}

	// The stale marker must still be there (the premise of the test)…
	copies, _, err := c.c.HotCopiesCtx(ctx, "stale.dat")
	if err != nil || copies != 2 {
		t.Fatalf("stale marker gone (copies=%d, err=%v); test premise broken", copies, err)
	}

	// …and a fresh client must read v2 regardless.
	c2, err := Dial(ctx, seed, WithCode("xor"), WithChunkCap(chunk))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	f, err := c2.Open(ctx, "stale.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, v1) {
		t.Fatal("read served stale hot replicas of the old bytes")
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("read matches neither version")
	}
}
