package peerstripe

import (
	"io"
	"time"

	"peerstripe/internal/telemetry"
)

// Latency summarizes one latency histogram: percentile estimates from
// the log-bucketed distribution, each within 6.25% of the true order
// statistic.
type Latency struct {
	// Count is how many operations were recorded.
	Count int64
	// P50, P95, P99, P999 are latency percentile estimates.
	P50, P95, P99, P999 time.Duration
	// Max is the slowest recorded operation, up to one bucket width.
	Max time.Duration
}

// Metrics is a point-in-time snapshot of a client's or node's
// telemetry: cumulative counters, instantaneous gauges, and latency
// summaries, keyed by metric name (with `{label="value"}` suffixes for
// labeled series). See docs/OBSERVABILITY.md for the metric catalog.
type Metrics struct {
	// Counters are cumulative event counts (ps_*_total).
	Counters map[string]int64
	// Gauges are instantaneous values (bytes held, queue depths).
	Gauges map[string]int64
	// Latencies summarize the latency histograms (ps_*_seconds).
	Latencies map[string]Latency
}

// metricsFromSnapshot reduces a registry snapshot to the public form.
func metricsFromSnapshot(s telemetry.Snapshot) Metrics {
	m := Metrics{
		Counters:  s.Counters,
		Gauges:    s.Gauges,
		Latencies: make(map[string]Latency, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		m.Latencies[name] = Latency{
			Count: h.Count,
			P50:   time.Duration(h.Quantile(0.50)),
			P95:   time.Duration(h.Quantile(0.95)),
			P99:   time.Duration(h.Quantile(0.99)),
			P999:  time.Duration(h.Quantile(0.999)),
			Max:   time.Duration(h.Max()),
		}
	}
	return m
}

// Metrics returns a snapshot of the client's telemetry: wire-pool
// round trips, store/fetch/repair latency, hedged-read and
// capacity-probe activity, and chunk-cache effectiveness.
func (c *Client) Metrics() Metrics {
	return metricsFromSnapshot(c.c.Telemetry().Snapshot())
}

// WriteMetrics writes the client's telemetry to w in the Prometheus
// text exposition format.
func (c *Client) WriteMetrics(w io.Writer) error {
	return telemetry.WritePrometheus(w, c.c.Telemetry())
}

// Metrics returns a snapshot of the node's telemetry: per-op request
// counts and handling latency, store occupancy, staging and streaming
// activity, failure-detector traffic, and repair progress.
func (n *Node) Metrics() Metrics {
	return metricsFromSnapshot(n.s.Telemetry().Snapshot())
}

// WriteMetrics writes the node's telemetry to w in the Prometheus
// text exposition format.
func (n *Node) WriteMetrics(w io.Writer) error {
	return telemetry.WritePrometheus(w, n.s.Telemetry())
}
