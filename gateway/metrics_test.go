package gateway_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"peerstripe/gateway"
	"peerstripe/internal/telemetry"
)

// TestGatewayMetricsEndpoint drives a small workload through the
// gateway and checks /-/metrics: the exposition parses, the per-method
// counters reconcile with the requests issued, and the /-/stats JSON —
// now read from the same registry — agrees with it.
func TestGatewayMetricsEndpoint(t *testing.T) {
	_, base := gateTest(t, gateway.Config{})

	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 64<<10)
	rng.Read(data)
	putObject(t, base, "m/a", data)
	putObject(t, base, "m/b", data)
	for i := 0; i < 3; i++ {
		resp, body := get(t, base+"/m/a", nil)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
			t.Fatalf("GET m/a: %s, %d bytes", resp.Status, len(body))
		}
	}
	if resp, _ := get(t, base+"/m/missing", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing = %s, want 404", resp.Status)
	}

	resp, err := http.Get(base + "/-/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ValidateText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("gateway exposition invalid: %v\n%s", err, body)
	}
	if samples == 0 {
		t.Fatal("gateway exposition empty")
	}
	text := string(body)
	// Gateway families plus the appended client registry (wire pool and
	// chunk cache) in one well-formed scrape.
	for _, want := range []string{
		`ps_gw_gets_total 4`, // 3 hits + 1 miss
		`ps_gw_puts_total 2`,
		`ps_gw_errors_total 1`,
		`ps_gw_responses_total{method="GET",code="200"} 3`,
		`ps_gw_responses_total{method="GET",code="404"} 1`,
		`ps_gw_responses_total{method="PUT",code="201"} 2`,
		`ps_gw_request_seconds_count{method="GET"} 4`,
		"ps_gw_first_byte_seconds_count",
		"ps_client_calls_total",
		"ps_cache_hits_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// /-/stats reads the same registry: its counters must agree with
	// the scrape taken while the gateway is quiet.
	sresp, err := http.Get(base + "/-/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st gateway.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Gets != 4 || st.Puts != 2 || st.Errors != 1 {
		t.Errorf("stats = gets %d puts %d errors %d, want 4/2/1", st.Gets, st.Puts, st.Errors)
	}
	if st.BytesOut != int64(3*len(data)) {
		t.Errorf("stats bytes_out = %d, want %d", st.BytesOut, 3*len(data))
	}
	if st.BytesIn != int64(2*len(data)) {
		t.Errorf("stats bytes_in = %d, want %d", st.BytesIn, 2*len(data))
	}
}

// TestGatewayStatsJSONShape pins the /-/stats wire shape: the rebase
// onto the telemetry registry must not change the JSON contract.
func TestGatewayStatsJSONShape(t *testing.T) {
	_, base := gateTest(t, gateway.Config{})
	resp, err := http.Get(base + "/-/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"gets", "heads", "puts", "deletes", "errors", "bytes_out", "bytes_in", "promotions", "cache"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats JSON missing %q", key)
		}
	}
}
