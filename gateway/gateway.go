// Package gateway is PeerStripe's HTTP front door: an http.Handler
// over the public peerstripe package serving GET/HEAD/PUT/DELETE on
// stored objects, so consumers reach the ring with any HTTP client
// instead of linking the Go package. cmd/psgate wraps it in a binary.
//
// The handler streams in both directions with bounded memory. GETs
// copy straight off File.ReadAt — Range requests (single and suffix
// ranges → 206 with Content-Range) pull only the chunks the range
// covers, and full-object GETs move through a small copy buffer while
// decoded chunks live in the client's shared, size-bounded cache.
// PUTs stream the request body through Client.Store one chunk at a
// time; no whole object is ever buffered (unlike the randomfs-http
// exemplar this replaces, which read full files into RAM).
//
// Hot objects scale reads two ways. The client's decoded-chunk cache
// is shared across every request with per-chunk singleflight, so a
// thundering herd on one object decodes each chunk exactly once. And
// objects a herd keeps hitting are promoted — full-copy chunk replicas
// placed across the ring (peerstripe.Promote) so later cold reads fan
// out from replicas instead of erasure-decoding.
//
// Object names are the URL path without the leading slash. Paths under
// "/-/" are reserved for the gateway itself (/-/healthz, /-/stats,
// /-/metrics — the latter Prometheus text, see docs/OBSERVABILITY.md).
package gateway

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"peerstripe"
	"peerstripe/internal/telemetry"
)

// Config tunes a Gateway. The zero value serves with promotion
// disabled and no PUT size cap.
type Config struct {
	// HotAfter is the GET count (per object, within the tracker
	// window) that triggers an asynchronous promotion of the object
	// into full-copy chunk replicas. HEAD requests do not count — a
	// metadata probe reads no data, so it earns no replicas.
	// 0 disables automatic promotion.
	HotAfter int
	// HotCopies is the replica count per chunk placed on promotion
	// (0 selects 2; capped at peerstripe.MaxHotCopies).
	HotCopies int
	// HotTrack is the tracker window: the maximum number of distinct
	// object names the promotion tracker remembers at once, evicting
	// the least recently hit (0 selects 4096). It bounds tracker
	// memory on a gateway fronting an arbitrarily large object
	// population.
	HotTrack int
	// MaxObjectBytes rejects PUTs with a larger Content-Length with
	// 413. 0 accepts any size.
	MaxObjectBytes int64
	// CopyBuffer is the per-request response copy buffer in bytes
	// (0 selects 128 KiB). It bounds per-request memory on GET; chunk
	// decode memory is bounded separately by the client's chunk cache.
	CopyBuffer int
	// Logf receives one line per failed request and per promotion.
	// nil discards.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of a Gateway's counters.
type Stats struct {
	Gets       int64                 `json:"gets"`
	Heads      int64                 `json:"heads"`
	Puts       int64                 `json:"puts"`
	Deletes    int64                 `json:"deletes"`
	Errors     int64                 `json:"errors"`
	BytesOut   int64                 `json:"bytes_out"`
	BytesIn    int64                 `json:"bytes_in"`
	Promotions int64                 `json:"promotions"`
	Cache      peerstripe.CacheStats `json:"cache"`
}

// Gateway is the http.Handler. Create one with New; it is safe for
// concurrent use.
type Gateway struct {
	cl  *peerstripe.Client
	cfg Config

	bufs sync.Pool // per-request copy buffers

	met *gwMetrics // request counters, latency, and exposition registry

	trackMu  sync.Mutex
	tracked  map[string]*list.Element
	trackLRU *list.List // of *hotState, most recently hit at front
}

// New returns a Gateway serving the client's ring. The client should
// be dialed with a chunk cache sized for the expected hot set
// (peerstripe.WithChunkCache); everything else works with defaults.
func New(cl *peerstripe.Client, cfg Config) *Gateway {
	if cfg.HotCopies <= 0 {
		cfg.HotCopies = 2
	}
	if cfg.HotCopies > peerstripe.MaxHotCopies {
		cfg.HotCopies = peerstripe.MaxHotCopies
	}
	if cfg.HotTrack <= 0 {
		cfg.HotTrack = 4096
	}
	if cfg.CopyBuffer <= 0 {
		cfg.CopyBuffer = 128 << 10
	}
	g := &Gateway{cl: cl, cfg: cfg, met: newGwMetrics(), tracked: make(map[string]*list.Element), trackLRU: list.New()}
	g.bufs.New = func() any {
		b := make([]byte, g.cfg.CopyBuffer)
		return &b
	}
	return g
}

// Stats reports the gateway's request counters plus the underlying
// client's chunk-cache counters. The counters are read from the same
// telemetry registry /-/metrics exposes, so the two views always agree.
func (g *Gateway) Stats() Stats {
	m := g.met
	return Stats{
		Gets:       m.gets.Value(),
		Heads:      m.heads.Value(),
		Puts:       m.puts.Value(),
		Deletes:    m.deletes.Value(),
		Errors:     m.errors.Value(),
		BytesOut:   m.bytesOut.Value(),
		BytesIn:    m.bytesIn.Value(),
		Promotions: m.promotions.Value(),
		Cache:      g.cl.CacheStats(),
	}
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/-/healthz" {
		g.serveHealth(w, r)
		return
	}
	if r.URL.Path == "/-/stats" {
		g.serveStats(w, r)
		return
	}
	if r.URL.Path == "/-/metrics" {
		g.serveMetrics(w, r)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/")
	if name == "" || strings.HasPrefix(name, "-/") {
		http.NotFound(w, r)
		return
	}
	sw := &statusWriter{ResponseWriter: w, met: g.met, start: time.Now()}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		g.serveObject(sw, r, name)
	case http.MethodPut:
		g.servePut(sw, r, name)
	case http.MethodDelete:
		g.serveDelete(sw, r, name)
	default:
		sw.Header().Set("Allow", "GET, HEAD, PUT, DELETE")
		http.Error(sw, "method not allowed", http.StatusMethodNotAllowed)
	}
	status := sw.status
	if status == 0 {
		// Nothing was written — the requester vanished mid-request.
		status = http.StatusOK
	}
	g.met.response(r.Method, status)
	g.met.reqSeconds(r.Method).Since(sw.start)
}

// serveMetrics writes the gateway's telemetry followed by the
// underlying client's (wire pool, fetch/store latency, chunk cache) in
// the Prometheus text format. The two registries use distinct metric
// prefixes (ps_gw_* vs ps_client_*/ps_cache_*), so the concatenation
// is one well-formed exposition.
func (g *Gateway) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.WritePrometheus(w, g.met.reg); err != nil {
		return
	}
	g.cl.WriteMetrics(w) //nolint:errcheck
}

func (g *Gateway) serveHealth(w http.ResponseWriter, r *http.Request) {
	if len(g.cl.Nodes()) == 0 {
		http.Error(w, "no ring members", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (g *Gateway) serveStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(g.Stats()) //nolint:errcheck
}

// serveObject handles GET and HEAD: conditional requests, single and
// suffix Range requests mapped onto File.ReadAt, and streamed bodies.
func (g *Gateway) serveObject(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method == http.MethodHead {
		g.met.heads.Inc()
	} else {
		g.met.gets.Inc()
	}
	f, err := g.cl.Open(r.Context(), name)
	if err != nil {
		g.fail(w, r, err)
		return
	}
	defer f.Close()

	size := f.Size()
	etag := f.ETag()
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Accept-Ranges", "bytes")
	h.Set("Content-Type", "application/octet-stream")

	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	off, length, status := int64(0), size, http.StatusOK
	// A Range only applies when the client's view of the object is
	// current: an If-Range with a different tag means "send it all".
	if spec := r.Header.Get("Range"); spec != "" {
		if ir := r.Header.Get("If-Range"); ir == "" || ir == etag {
			switch o, l, ok, satisfiable := parseRange(spec, size); {
			case !ok:
				// Malformed or multi-range: ignore the header (RFC
				// 9110 §14.2) and serve the full object.
			case !satisfiable:
				h.Set("Content-Range", fmt.Sprintf("bytes */%d", size))
				http.Error(w, "requested range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
				return
			default:
				off, length, status = o, l, http.StatusPartialContent
				h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+length-1, size))
			}
		}
	}
	h.Set("Content-Length", strconv.FormatInt(length, 10))
	w.WriteHeader(status)

	if r.Method == http.MethodHead {
		return
	}
	g.recordHit(name) // GETs only: metadata probes earn no replicas
	bufp := g.bufs.Get().(*[]byte)
	defer g.bufs.Put(bufp)
	// writerOnly hides the ResponseWriter's ReadFrom so CopyBuffer
	// actually uses the pooled Config.CopyBuffer-sized buffer instead
	// of delegating to w.ReadFrom and ignoring it.
	n, err := io.CopyBuffer(writerOnly{w}, io.NewSectionReader(f, off, length), *bufp)
	g.met.bytesOut.Add(n)
	if err != nil && r.Context().Err() == nil {
		// Headers are gone; all we can do is cut the connection short
		// and note it.
		g.met.errors.Inc()
		g.logf("gateway: GET %s: streaming body: %v", name, err)
	}
}

// servePut streams the request body into the ring under the object
// name. A Content-Length is required — it is what lets Store plan
// chunk sizes up front and keep peak memory at a small multiple of
// the chunk size instead of the object size.
func (g *Gateway) servePut(w http.ResponseWriter, r *http.Request, name string) {
	g.met.puts.Inc()
	size := r.ContentLength
	if size < 0 {
		g.met.errors.Inc()
		http.Error(w, "Content-Length required (chunked uploads are not supported)", http.StatusLengthRequired)
		return
	}
	if g.cfg.MaxObjectBytes > 0 && size > g.cfg.MaxObjectBytes {
		g.met.errors.Inc()
		http.Error(w, fmt.Sprintf("object exceeds %d byte cap", g.cfg.MaxObjectBytes), http.StatusRequestEntityTooLarge)
		return
	}
	info, err := g.cl.Store(r.Context(), name, r.Body, size)
	if err != nil {
		g.fail(w, r, err)
		return
	}
	g.met.bytesIn.Add(info.Size)
	g.forget(name) // hit history belongs to the replaced bytes
	// The ETag of the freshly stored object comes from its CAT; one
	// cheap metadata open reads it back.
	if f, err := g.cl.Open(r.Context(), name); err == nil {
		w.Header().Set("ETag", f.ETag())
		f.Close() //nolint:errcheck
	}
	w.WriteHeader(http.StatusCreated)
}

func (g *Gateway) serveDelete(w http.ResponseWriter, r *http.Request, name string) {
	g.met.deletes.Inc()
	if err := g.cl.Delete(r.Context(), name); err != nil {
		g.fail(w, r, err)
		return
	}
	g.forget(name)
	w.WriteHeader(http.StatusNoContent)
}

// fail maps peerstripe error classes onto gateway status codes:
// a missing object is the caller's 404, an unreachable ring is a 503
// the client should retry, a deadline is the upstream's 504, and
// anything else is a 502 from the ring this gateway fronts.
func (g *Gateway) fail(w http.ResponseWriter, r *http.Request, err error) {
	g.met.errors.Inc()
	status := http.StatusBadGateway
	switch {
	case errors.Is(err, peerstripe.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, peerstripe.ErrRingUnavailable):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), r.Context().Err() != nil:
		// The requester is gone; nothing useful to write.
		return
	case errors.Is(err, io.ErrUnexpectedEOF):
		// A PUT body shorter than its Content-Length.
		status = http.StatusBadRequest
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	g.logf("gateway: %s %s: %d: %v", r.Method, r.URL.Path, status, err)
	http.Error(w, http.StatusText(status), status)
}

// parseRange interprets an RFC 9110 Range header against an object of
// the given size, supporting exactly the shapes File.ReadAt maps
// cleanly: one "start-end", "start-", or suffix "-n" range. ok=false
// means the header should be ignored (malformed, not bytes-unit, or
// multi-range); satisfiable=false means 416.
func parseRange(spec string, size int64) (off, length int64, ok, satisfiable bool) {
	const prefix = "bytes="
	if !strings.HasPrefix(spec, prefix) {
		return 0, 0, false, false
	}
	spec = strings.TrimSpace(strings.TrimPrefix(spec, prefix))
	if strings.Contains(spec, ",") { // multi-range: serve the full object
		return 0, 0, false, false
	}
	dash := strings.IndexByte(spec, '-')
	if dash < 0 {
		return 0, 0, false, false
	}
	startS, endS := spec[:dash], spec[dash+1:]
	if startS == "" {
		// Suffix range: the final n bytes.
		n, err := strconv.ParseInt(endS, 10, 64)
		if err != nil || n < 0 {
			return 0, 0, false, false
		}
		if n == 0 || size == 0 {
			return 0, 0, true, false
		}
		if n > size {
			n = size
		}
		return size - n, n, true, true
	}
	start, err := strconv.ParseInt(startS, 10, 64)
	if err != nil || start < 0 {
		return 0, 0, false, false
	}
	if start >= size {
		return 0, 0, true, false
	}
	end := size - 1
	if endS != "" {
		e, err := strconv.ParseInt(endS, 10, 64)
		if err != nil || e < start {
			return 0, 0, false, false
		}
		if e < end {
			end = e
		}
	}
	return start, end - start + 1, true, true
}

// writerOnly restricts a writer to io.Writer alone, masking any
// ReadFrom method that would let io.CopyBuffer bypass its caller's
// buffer.
type writerOnly struct{ io.Writer }

// etagMatches reports whether an If-None-Match header value matches
// the entity tag: "*" or any listed tag, weak comparison.
func etagMatches(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}
