package gateway

import (
	"net/http"
	"strconv"
	"time"

	"peerstripe/internal/telemetry"
)

// methods are the request methods the gateway serves; anything else
// folds into the "other" series so unexpected traffic still shows up.
var methods = []string{http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete, "other"}

// gwMetrics is the gateway's instrument set, resolved at New so the
// request path records with bare atomic adds. The same counters back
// both the /-/stats JSON (Stats reads them directly, keeping its shape)
// and the /-/metrics Prometheus exposition.
type gwMetrics struct {
	reg *telemetry.Registry

	gets, heads, puts, deletes, errors *telemetry.Counter
	bytesOut, bytesIn                  *telemetry.Counter
	promotions                         *telemetry.Counter

	requestSeconds   map[string]*telemetry.Histogram // by method
	firstByteSeconds *telemetry.Histogram
}

func newGwMetrics() *gwMetrics {
	reg := telemetry.NewRegistry()
	m := &gwMetrics{
		reg:              reg,
		gets:             reg.Counter("ps_gw_gets_total", "GET requests received."),
		heads:            reg.Counter("ps_gw_heads_total", "HEAD requests received."),
		puts:             reg.Counter("ps_gw_puts_total", "PUT requests received."),
		deletes:          reg.Counter("ps_gw_deletes_total", "DELETE requests received."),
		errors:           reg.Counter("ps_gw_errors_total", "Requests that failed (error status or a body cut short)."),
		bytesOut:         reg.Counter("ps_gw_bytes_out_total", "Object body bytes written to GET responses."),
		bytesIn:          reg.Counter("ps_gw_bytes_in_total", "Object bytes stored from PUT request bodies."),
		promotions:       reg.Counter("ps_gw_promotions_total", "Hot objects promoted into full-copy chunk replicas."),
		requestSeconds:   make(map[string]*telemetry.Histogram, len(methods)),
		firstByteSeconds: reg.Histogram("ps_gw_first_byte_seconds", "Time from request arrival to the first response body byte."),
	}
	for _, meth := range methods {
		m.requestSeconds[meth] = reg.Histogram("ps_gw_request_seconds", "Whole-request latency, by method.", "method", meth)
	}
	return m
}

// response counts one finished request by method and status code. The
// per-code counter is resolved through the registry (get-or-create
// under its lock) — one short critical section per request, off the
// byte-moving path.
func (m *gwMetrics) response(method string, code int) {
	if _, ok := m.requestSeconds[method]; !ok {
		method = "other"
	}
	m.reg.Counter("ps_gw_responses_total", "Responses sent, by method and status code.",
		"method", method, "code", strconv.Itoa(code)).Inc()
}

// reqSeconds resolves the per-method request latency histogram.
func (m *gwMetrics) reqSeconds(method string) *telemetry.Histogram {
	if h, ok := m.requestSeconds[method]; ok {
		return h
	}
	return m.requestSeconds["other"]
}

// statusWriter wraps the ResponseWriter to observe what the handlers
// write: the final status code, body bytes, and the moment the first
// body byte leaves — the first-byte latency a streaming GET hides from
// whole-request timing.
type statusWriter struct {
	http.ResponseWriter
	met      *gwMetrics
	start    time.Time
	status   int
	wroteHdr bool
	sawByte  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wroteHdr {
		sw.wroteHdr = true
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wroteHdr {
		sw.wroteHdr = true
		sw.status = http.StatusOK
	}
	if !sw.sawByte && len(p) > 0 {
		sw.sawByte = true
		sw.met.firstByteSeconds.Since(sw.start)
	}
	return sw.ResponseWriter.Write(p)
}
