//go:build race

package gateway_test

// raceEnabled reports whether the race detector is compiled in; the
// heap-bound streaming test skips under it (instrumentation distorts
// allocation accounting and runtime).
const raceEnabled = true
