package gateway

import "testing"

// TestTrackerWindowBounded pins the HotTrack window: the promotion
// tracker holds at most HotTrack distinct names, evicting the least
// recently hit, so a gateway fronting an unbounded object population
// keeps bounded state. It drives recordHit directly — promotion never
// launches because no count reaches HotAfter.
func TestTrackerWindowBounded(t *testing.T) {
	g := New(nil, Config{HotAfter: 100, HotTrack: 2})

	g.recordHit("a")
	g.recordHit("b")
	g.recordHit("a") // refresh a: b is now least recently hit
	g.recordHit("c") // evicts b

	g.trackMu.Lock()
	defer g.trackMu.Unlock()
	if len(g.tracked) != 2 || g.trackLRU.Len() != 2 {
		t.Fatalf("tracker holds %d names (lru %d), want 2", len(g.tracked), g.trackLRU.Len())
	}
	if _, ok := g.tracked["b"]; ok {
		t.Fatal("least recently hit name survived eviction")
	}
	if el, ok := g.tracked["a"]; !ok || el.Value.(*hotState).hits != 2 {
		t.Fatal("refreshed name lost its state")
	}
	if _, ok := g.tracked["c"]; !ok {
		t.Fatal("newest name missing")
	}
}

// TestTrackerWindowDefault pins the zero-value window: New must not
// leave HotTrack unbounded.
func TestTrackerWindowDefault(t *testing.T) {
	g := New(nil, Config{HotAfter: 3})
	if g.cfg.HotTrack != 4096 {
		t.Fatalf("default HotTrack = %d, want 4096", g.cfg.HotTrack)
	}
}
