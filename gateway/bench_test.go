package gateway_test

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"peerstripe"
	"peerstripe/gateway"
)

// benchGateway stands up a ring, gateway, and one stored object for
// the benchmark arms, returning the object's URL.
func benchGateway(b *testing.B, objectSize int64) string {
	b.Helper()
	_, seed := testRing(b, 3, 1<<30)
	cl := dialTest(b, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(256<<10))
	ts := httptest.NewServer(gateway.New(cl, gateway.Config{}))
	b.Cleanup(ts.Close)

	data := make([]byte, objectSize)
	rand.New(rand.NewSource(41)).Read(data)
	putObject(b, ts.URL, "bench.bin", data)
	return ts.URL + "/bench.bin"
}

// BenchmarkGatewayGet measures full-object GET throughput through the
// HTTP gateway against a live loopback ring — request parsing, the
// shared chunk cache (warm after the first iteration), and the
// streamed response copy. The MB/s floor is guarded by `make
// bench-guard` against BENCH_PR9.json.
func BenchmarkGatewayGet(b *testing.B) {
	const objectSize = 4 << 20
	url := benchGateway(b, objectSize)
	b.SetBytes(objectSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || n != objectSize {
			b.Fatalf("GET: %d bytes, %v", n, err)
		}
	}
}

// BenchmarkGatewayGetRanged measures small ranged GETs — the
// per-request overhead path: open, one cached chunk read, 206
// assembly — at 64 KiB per request.
func BenchmarkGatewayGetRanged(b *testing.B) {
	const (
		objectSize = 4 << 20
		span       = 64 << 10
	)
	url := benchGateway(b, objectSize)
	rng := rand.New(rand.NewSource(42))
	b.SetBytes(span)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := rng.Int63n(objectSize - span)
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+span-1))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusPartialContent || n != span {
			b.Fatalf("ranged GET: status %d, %d bytes, %v", resp.StatusCode, n, err)
		}
	}
}
