//go:build !race

package gateway_test

const raceEnabled = false
