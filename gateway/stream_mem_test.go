package gateway_test

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"peerstripe"
	"peerstripe/gateway"
)

// heapSampler polls HeapAlloc every 2ms until stopped, tracking the
// peak — a whole-object buffer shows up no matter when it is allocated
// (mirrors the root package's sampler).
type heapSampler struct {
	base uint64
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func startHeapSampler() *heapSampler {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	hs := &heapSampler{base: base.HeapAlloc, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hs.done)
		var ms runtime.MemStats
		for {
			select {
			case <-hs.stop:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				for {
					p := hs.peak.Load()
					if ms.HeapAlloc <= p || hs.peak.CompareAndSwap(p, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()
	return hs
}

func (hs *heapSampler) growth() int64 {
	close(hs.stop)
	<-hs.done
	return int64(hs.peak.Load()) - int64(hs.base)
}

// TestGatewayGetBoundedMemory is the streaming acceptance test for the
// read path: a full-object GET of a file many times the chunk-cache
// bound streams through the gateway while peak heap growth stays far
// below the object size — the body is never buffered whole; only the
// bounded chunk cache, the copy buffer, and wire buffers are live.
func TestGatewayGetBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("64 MiB streaming GET; skipped with -short")
	}
	if raceEnabled {
		t.Skip("heap accounting distorted under the race detector")
	}

	const (
		objectSize = 64 << 20 // 16 chunks of 4 MiB
		chunkCap   = 4 << 20
		cacheCap   = 8 << 20  // room for 2 decoded chunks
		heapCap    = 32 << 20 // fail if peak growth reaches half the object
	)
	_, seed := testRing(t, 3, 1<<30)
	cl := dialTest(t, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(chunkCap),
		peerstripe.WithChunkCache(cacheCap))
	ts := httptest.NewServer(gateway.New(cl, gateway.Config{}))
	defer ts.Close()

	data := make([]byte, objectSize)
	rand.New(rand.NewSource(31)).Read(data)
	putObject(t, ts.URL, "large.bin", data)
	sum := func(b []byte) (s byte) {
		for _, x := range b {
			s ^= x
		}
		return
	}
	wantSum := sum(data)
	data = nil // the reference copy must not sit in the measured heap

	// The in-process servers legitimately hold ~1.5x the object in
	// encoded blocks, so with the default GOGC the collector would let
	// transient decode garbage accumulate to that scale before running
	// — swamping the signal. A tight GC percent makes the sampler see
	// live memory: the bounded cache and buffers, or a buffered body.
	defer debug.SetGCPercent(debug.SetGCPercent(10))

	hs := startHeapSampler()
	resp, err := http.Get(ts.URL + "/large.bin")
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	var gotSum byte
	buf := make([]byte, 256<<10)
	for {
		m, err := resp.Body.Read(buf)
		gotSum ^= sum(buf[:m])
		n += int64(m)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	grew := hs.growth()

	if n != objectSize || gotSum != wantSum {
		t.Fatalf("streamed %d bytes (want %d), checksum match %v", n, objectSize, gotSum == wantSum)
	}
	if grew >= heapCap {
		t.Errorf("peak heap grew %d MiB during a %d MiB GET (cap %d MiB): body is being buffered",
			grew>>20, objectSize>>20, int64(heapCap)>>20)
	}
	t.Logf("peak heap growth %d MiB for a %d MiB object", grew>>20, objectSize>>20)
}
