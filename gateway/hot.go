package gateway

import (
	"context"
	"time"
)

// hotState is one object's promotion bookkeeping: a GET hit count and
// whether a promotion has been launched or finished for it. One state
// outlives its promotion so the object is not re-promoted on every
// subsequent hit; PUT and DELETE forget the name, resetting it.
type hotState struct {
	hits     int
	promoted bool // launched (maybe still in flight) or done
}

// recordHit counts one successful GET/HEAD toward the object's
// promotion threshold and, on crossing it, launches exactly one
// asynchronous promotion. The request that trips the threshold is not
// delayed: promotion runs on its own goroutine with its own deadline,
// detached from the request context.
func (g *Gateway) recordHit(name string) {
	if g.cfg.HotAfter <= 0 {
		return
	}
	g.trackMu.Lock()
	st := g.tracked[name]
	if st == nil {
		st = &hotState{}
		g.tracked[name] = st
	}
	st.hits++
	launch := !st.promoted && st.hits >= g.cfg.HotAfter
	if launch {
		st.promoted = true
	}
	g.trackMu.Unlock()
	if launch {
		go g.promote(name)
	}
}

// forget drops the object's hit history; the next herd starts from
// zero against the new bytes.
func (g *Gateway) forget(name string) {
	g.trackMu.Lock()
	delete(g.tracked, name)
	g.trackMu.Unlock()
}

// promote places the full-copy chunk replicas for one hot object.
// Failure is logged and the launched flag rolled back, so a later hit
// retries rather than leaving the object stuck unpromoted forever.
func (g *Gateway) promote(name string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	info, err := g.cl.Promote(ctx, name, g.cfg.HotCopies)
	if err != nil {
		g.logf("gateway: promote %s: %v", name, err)
		g.trackMu.Lock()
		if st := g.tracked[name]; st != nil {
			st.promoted = false
		}
		g.trackMu.Unlock()
		return
	}
	g.trackMu.Lock()
	g.promoted++
	g.trackMu.Unlock()
	g.logf("gateway: promoted %s: %d chunks x %d copies (%d bytes)",
		name, info.Chunks, info.Copies, info.Bytes)
}
