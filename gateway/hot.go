package gateway

import (
	"context"
	"time"
)

// hotState is one object's promotion bookkeeping: a GET hit count and
// whether a promotion has been launched or finished for it. One state
// outlives its promotion so the object is not re-promoted on every
// subsequent hit; PUT and DELETE forget the name, resetting it.
type hotState struct {
	name     string
	hits     int
	promoted bool // launched (maybe still in flight) or done
}

// recordHit counts one successful GET toward the object's promotion
// threshold and, on crossing it, launches exactly one asynchronous
// promotion. The request that trips the threshold is not delayed:
// promotion runs on its own goroutine with its own deadline, detached
// from the request context.
//
// The tracker is the Config.HotTrack window: an LRU over distinct
// object names, so a long-running gateway fronting an arbitrarily
// large object population holds bounded state. A name that falls off
// the window restarts its count (and, if it was promoted, may be
// promoted again — the re-promotion overwrites the same replicas, so
// the cost is wasted work, not correctness).
func (g *Gateway) recordHit(name string) {
	if g.cfg.HotAfter <= 0 {
		return
	}
	g.trackMu.Lock()
	var st *hotState
	if el, ok := g.tracked[name]; ok {
		g.trackLRU.MoveToFront(el)
		st = el.Value.(*hotState)
	} else {
		st = &hotState{name: name}
		g.tracked[name] = g.trackLRU.PushFront(st)
		for len(g.tracked) > g.cfg.HotTrack {
			tail := g.trackLRU.Back()
			g.trackLRU.Remove(tail)
			delete(g.tracked, tail.Value.(*hotState).name)
		}
	}
	st.hits++
	launch := !st.promoted && st.hits >= g.cfg.HotAfter
	if launch {
		st.promoted = true
	}
	g.trackMu.Unlock()
	if launch {
		go g.promote(name)
	}
}

// forget drops the object's hit history; the next herd starts from
// zero against the new bytes.
func (g *Gateway) forget(name string) {
	g.trackMu.Lock()
	if el, ok := g.tracked[name]; ok {
		g.trackLRU.Remove(el)
		delete(g.tracked, name)
	}
	g.trackMu.Unlock()
}

// promote places the full-copy chunk replicas for one hot object.
// Failure is logged and the launched flag rolled back, so a later hit
// retries rather than leaving the object stuck unpromoted forever.
func (g *Gateway) promote(name string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	info, err := g.cl.Promote(ctx, name, g.cfg.HotCopies)
	if err != nil {
		g.logf("gateway: promote %s: %v", name, err)
		g.trackMu.Lock()
		if el, ok := g.tracked[name]; ok {
			el.Value.(*hotState).promoted = false
		}
		g.trackMu.Unlock()
		return
	}
	g.met.promotions.Inc()
	g.logf("gateway: promoted %s: %d chunks x %d copies (%d bytes)",
		name, info.Chunks, info.Copies, info.Bytes)
}
