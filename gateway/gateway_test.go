package gateway_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"peerstripe"
	"peerstripe/gateway"
	"peerstripe/internal/node"
)

// testRing starts n in-process storage nodes and returns them with the
// seed address (mirrors the root package's helper; test helpers do not
// cross package boundaries).
func testRing(t testing.TB, n int, capacity int64) ([]*node.Server, string) {
	t.Helper()
	var servers []*node.Server
	seed := ""
	for i := 0; i < n; i++ {
		s, err := node.NewServer("127.0.0.1:0", capacity, seed)
		if err != nil {
			t.Fatal(err)
		}
		if seed == "" {
			seed = s.Addr()
		}
		servers = append(servers, s)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, s := range servers {
			if s.RingSize() != n {
				converged = false
			}
		}
		if converged {
			return servers, seed
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("ring did not converge")
	return nil, ""
}

func dialTest(t testing.TB, seed string, opts ...peerstripe.Option) *peerstripe.Client {
	t.Helper()
	c, err := peerstripe.Dial(context.Background(), seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// gateTest stands up a ring, a client, and an HTTP test server running
// the gateway, returning the client and the server's base URL.
func gateTest(t testing.TB, cfg gateway.Config, opts ...peerstripe.Option) (*peerstripe.Client, string) {
	t.Helper()
	_, seed := testRing(t, 3, 1<<30)
	cl := dialTest(t, seed, opts...)
	ts := httptest.NewServer(gateway.New(cl, cfg))
	t.Cleanup(ts.Close)
	return cl, ts.URL
}

func putObject(t testing.TB, base, name string, data []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/"+name, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT %s: %s", name, resp.Status)
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatalf("PUT %s: no ETag on 201", name)
	}
}

func get(t testing.TB, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestGatewayPutGetRoundTrip pins the streaming write path: a
// multi-chunk object PUT through the gateway lands on the ring intact
// and comes back byte-identical on GET, with coherent metadata.
func TestGatewayPutGetRoundTrip(t *testing.T) {
	_, base := gateTest(t, gateway.Config{},
		peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))

	data := make([]byte, 8*64<<10) // 8 chunks
	rand.New(rand.NewSource(21)).Read(data)
	putObject(t, base, "obj.bin", data)

	resp, body := get(t, base+"/obj.bin", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: %s", resp.Status)
	}
	if !bytes.Equal(body, data) {
		t.Fatal("GET body differs from PUT body")
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(data)) {
		t.Errorf("Content-Length = %q, want %d", cl, len(data))
	}
	if resp.Header.Get("ETag") == "" || resp.Header.Get("Accept-Ranges") != "bytes" {
		t.Errorf("missing validators: ETag=%q Accept-Ranges=%q",
			resp.Header.Get("ETag"), resp.Header.Get("Accept-Ranges"))
	}
}

// TestGatewayRangeMatrix drives the Range grammar against a live
// object: first/middle/tail/suffix slices come back as 206 with exact
// bytes and Content-Range, unsatisfiable starts are 416, and malformed
// or multi-range headers fall back to the full 200 representation.
func TestGatewayRangeMatrix(t *testing.T) {
	_, base := gateTest(t, gateway.Config{},
		peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))

	size := 3*64<<10 + 100 // chunk-unaligned on purpose
	data := make([]byte, size)
	rand.New(rand.NewSource(22)).Read(data)
	putObject(t, base, "ranged.bin", data)

	cases := []struct {
		spec   string
		status int
		off, n int
		cr     string // expected Content-Range, "" = none
	}{
		{"bytes=0-99", 206, 0, 100, fmt.Sprintf("bytes 0-99/%d", size)},
		{"bytes=0-0", 206, 0, 1, fmt.Sprintf("bytes 0-0/%d", size)},
		{"bytes=70000-130000", 206, 70000, 60001, fmt.Sprintf("bytes 70000-130000/%d", size)}, // crosses a chunk seam
		{fmt.Sprintf("bytes=%d-", size-100), 206, size - 100, 100, fmt.Sprintf("bytes %d-%d/%d", size-100, size-1, size)},
		{"bytes=-100", 206, size - 100, 100, fmt.Sprintf("bytes %d-%d/%d", size-100, size-1, size)},
		{fmt.Sprintf("bytes=-%d", 10*size), 206, 0, size, fmt.Sprintf("bytes 0-%d/%d", size-1, size)},                          // over-long suffix clamps
		{fmt.Sprintf("bytes=190000-%d", 10*size), 206, 190000, size - 190000, fmt.Sprintf("bytes 190000-%d/%d", size-1, size)}, // end past size clamps
		{fmt.Sprintf("bytes=%d-", size), 416, 0, 0, fmt.Sprintf("bytes */%d", size)},
		{fmt.Sprintf("bytes=%d-%d", 2*size, 3*size), 416, 0, 0, fmt.Sprintf("bytes */%d", size)},
		{"bytes=garbage", 200, 0, size, ""},
		{"bytes=5-2", 200, 0, size, ""},       // end before start: ignored
		{"bytes=0-1,50-60", 200, 0, size, ""}, // multi-range unsupported: full body
		{"chapters=1-2", 200, 0, size, ""},    // unknown unit: ignored
	}
	for _, tc := range cases {
		resp, body := get(t, base+"/ranged.bin", map[string]string{"Range": tc.spec})
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.spec, resp.StatusCode, tc.status)
			continue
		}
		if cr := resp.Header.Get("Content-Range"); cr != tc.cr {
			t.Errorf("%s: Content-Range %q, want %q", tc.spec, cr, tc.cr)
		}
		if tc.status == 416 {
			continue
		}
		if !bytes.Equal(body, data[tc.off:tc.off+tc.n]) {
			t.Errorf("%s: body is not bytes [%d, %d)", tc.spec, tc.off, tc.off+tc.n)
		}
	}
}

// TestGatewayHeadMatchesGet pins HEAD/GET parity: identical status and
// entity headers, no body — for the full object and for a Range.
func TestGatewayHeadMatchesGet(t *testing.T) {
	_, base := gateTest(t, gateway.Config{},
		peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))
	data := make([]byte, 100000)
	rand.New(rand.NewSource(23)).Read(data)
	putObject(t, base, "head.bin", data)

	for _, rng := range []string{"", "bytes=100-199", "bytes=-1"} {
		hdr := map[string]string{}
		if rng != "" {
			hdr["Range"] = rng
		}
		getResp, _ := get(t, base+"/head.bin", hdr)
		req, _ := http.NewRequest(http.MethodHead, base+"/head.bin", nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		headResp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(headResp.Body)
		headResp.Body.Close()

		if headResp.StatusCode != getResp.StatusCode {
			t.Errorf("range %q: HEAD %d vs GET %d", rng, headResp.StatusCode, getResp.StatusCode)
		}
		if len(body) != 0 {
			t.Errorf("range %q: HEAD returned %d body bytes", rng, len(body))
		}
		for _, h := range []string{"ETag", "Content-Length", "Content-Range", "Accept-Ranges", "Content-Type"} {
			if hv, gv := headResp.Header.Get(h), getResp.Header.Get(h); hv != gv {
				t.Errorf("range %q: header %s: HEAD %q vs GET %q", rng, h, hv, gv)
			}
		}
	}
}

// TestGatewayConditional pins the validator flows: If-None-Match hits
// return 304 with no body, misses return the object, and an If-Range
// with a stale tag disables the Range instead of serving a torn slice.
func TestGatewayConditional(t *testing.T) {
	_, base := gateTest(t, gateway.Config{},
		peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))
	data := make([]byte, 50000)
	rand.New(rand.NewSource(24)).Read(data)
	putObject(t, base, "cond.bin", data)

	resp, _ := get(t, base+"/cond.bin", nil)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on GET")
	}

	resp, body := get(t, base+"/cond.bin", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Errorf("If-None-Match match: %d with %d body bytes, want 304 empty", resp.StatusCode, len(body))
	}
	resp, _ = get(t, base+"/cond.bin", map[string]string{"If-None-Match": "*"})
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match *: %d, want 304", resp.StatusCode)
	}
	resp, body = get(t, base+"/cond.bin", map[string]string{"If-None-Match": `"deadbeefdeadbeef"`})
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Errorf("If-None-Match miss: %d, want 200 with full body", resp.StatusCode)
	}

	resp, body = get(t, base+"/cond.bin", map[string]string{"Range": "bytes=0-9", "If-Range": etag})
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, data[:10]) {
		t.Errorf("If-Range current: %d with %d bytes, want 206 with 10", resp.StatusCode, len(body))
	}
	resp, body = get(t, base+"/cond.bin", map[string]string{"Range": "bytes=0-9", "If-Range": `"deadbeefdeadbeef"`})
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Errorf("If-Range stale: %d with %d bytes, want 200 full", resp.StatusCode, len(body))
	}
}

// TestGatewayErrors pins the error mapping and method handling: absent
// objects are 404, chunked PUTs are 411, oversized PUTs are 413,
// unsupported methods are 405, and a dead ring is 503.
func TestGatewayErrors(t *testing.T) {
	servers, seed := testRing(t, 3, 1<<30)
	cl := dialTest(t, seed, peerstripe.WithCode("xor"))
	ts := httptest.NewServer(gateway.New(cl, gateway.Config{MaxObjectBytes: 1000}))
	defer ts.Close()

	resp, _ := get(t, ts.URL+"/nope.bin", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET missing: %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET empty name: %d, want 404", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/chunked.bin", io.NopCloser(bytes.NewReader(make([]byte, 10))))
	req.ContentLength = -1 // forces chunked transfer encoding
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusLengthRequired {
		t.Errorf("chunked PUT: %d, want 411", resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/big.bin", bytes.NewReader(make([]byte, 2000)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized PUT: %d, want 413", resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/x", bytes.NewReader(nil))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") == "" {
		t.Errorf("POST: %d (Allow %q), want 405 with Allow", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// Kill the ring out from under the gateway: requests become 503.
	for _, s := range servers {
		s.Close()
	}
	resp, _ = get(t, ts.URL+"/nope.bin", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("dead ring GET: %d, want 503", resp.StatusCode)
	}
}

// TestGatewayDelete pins the delete flow: 204 on success, then 404 on
// both a re-GET and a re-DELETE.
func TestGatewayDelete(t *testing.T) {
	_, base := gateTest(t, gateway.Config{},
		peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))
	putObject(t, base, "del.bin", []byte("short-lived"))

	req, _ := http.NewRequest(http.MethodDelete, base+"/del.bin", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %d, want 204", resp.StatusCode)
	}
	getResp, _ := get(t, base+"/del.bin", nil)
	if getResp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after DELETE: %d, want 404", getResp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE: %d, want 404", resp.StatusCode)
	}
}

// TestGatewayHerdDecodesOnce is the ISSUE 9 acceptance test: 64 HTTP
// clients hammering one cold multi-chunk object decode each chunk
// exactly once — the shared singleflight cache collapses the herd, and
// every client still gets the exact bytes.
func TestGatewayHerdDecodesOnce(t *testing.T) {
	const chunks = 8
	cl, base := gateTest(t, gateway.Config{},
		peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))

	data := make([]byte, chunks*64<<10)
	rand.New(rand.NewSource(25)).Read(data)
	putObject(t, base, "hot.bin", data)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/hot.bin")
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
				errs <- fmt.Errorf("herd GET: status %d, %d bytes", resp.StatusCode, len(body))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := cl.CacheStats()
	if st.Decodes != chunks {
		t.Errorf("64-client herd ran %d decodes, want %d (one per chunk)", st.Decodes, chunks)
	}
	if st.Hits == 0 {
		t.Error("herd recorded no cache hits")
	}
}

// TestGatewayHotPromotion pins the promotion automation: once an
// object's GET count crosses HotAfter, the gateway asynchronously
// places full-copy replicas (visible in Stats), and reads keep
// returning the exact bytes afterwards.
func TestGatewayHotPromotion(t *testing.T) {
	_, seed := testRing(t, 4, 1<<30)
	cl := dialTest(t, seed, peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))
	gw := gateway.New(cl, gateway.Config{HotAfter: 3, HotCopies: 2})
	ts := httptest.NewServer(gw)
	defer ts.Close()

	data := make([]byte, 3*64<<10)
	rand.New(rand.NewSource(26)).Read(data)
	putObject(t, ts.URL, "popular.bin", data)

	for i := 0; i < 3; i++ {
		resp, body := get(t, ts.URL+"/popular.bin", nil)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
			t.Fatalf("GET %d: %d", i, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for gw.Stats().Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no promotion after crossing HotAfter")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A fresh client reads the promoted object via replicas; the bytes
	// must be identical either way.
	c2 := dialTest(t, seed, peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))
	f, err := c2.Open(context.Background(), "popular.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("promoted read: %v", err)
	}
}

// TestGatewayHeadDoesNotPromote pins that only GETs count toward the
// promotion threshold: a monitor HEADing an object all day must not
// spend fileSize × copies of ring storage. Any number of HEADs below
// threshold changes nothing; the next GET — not any earlier HEAD — is
// what crosses it.
func TestGatewayHeadDoesNotPromote(t *testing.T) {
	_, seed := testRing(t, 4, 1<<30)
	cl := dialTest(t, seed, peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))
	gw := gateway.New(cl, gateway.Config{HotAfter: 3, HotCopies: 2})
	ts := httptest.NewServer(gw)
	defer ts.Close()

	data := make([]byte, 2*64<<10)
	rand.New(rand.NewSource(27)).Read(data)
	putObject(t, ts.URL, "probed.bin", data)

	for i := 0; i < 2; i++ {
		if resp, _ := get(t, ts.URL+"/probed.bin", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %d: %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < 10; i++ {
		resp, err := http.Head(ts.URL + "/probed.bin")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HEAD %d: %d", i, resp.StatusCode)
		}
	}
	// If HEADs counted, the threshold crossed long ago and the launch
	// decision was taken synchronously; give the async Promote ample
	// time to surface in Stats before declaring it never launched.
	time.Sleep(200 * time.Millisecond)
	if p := gw.Stats().Promotions; p != 0 {
		t.Fatalf("HEAD requests triggered %d promotions", p)
	}

	// The third GET crosses the threshold.
	if resp, _ := get(t, ts.URL+"/probed.bin", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("final GET failed")
	}
	deadline := time.Now().Add(10 * time.Second)
	for gw.Stats().Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no promotion after the GET count crossed HotAfter")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayStatsAndHealth smoke-tests the operational endpoints.
func TestGatewayStatsAndHealth(t *testing.T) {
	_, base := gateTest(t, gateway.Config{},
		peerstripe.WithCode("xor"), peerstripe.WithChunkCap(64<<10))
	putObject(t, base, "s.bin", []byte("stats"))
	get(t, base+"/s.bin", nil)

	resp, body := get(t, base+"/-/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	resp, body = get(t, base+"/-/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	for _, want := range []string{`"gets"`, `"puts"`, `"cache"`, `"bytes_out"`} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("stats JSON missing %s: %s", want, body)
		}
	}
}
