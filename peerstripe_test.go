package peerstripe_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"peerstripe"
	"peerstripe/internal/node"
)

// testRing starts n in-process storage nodes and returns them with the
// seed address. It uses the internal server directly so tests can read
// its counters (StreamOps, FetchOps) and switch discard mode.
func testRing(t testing.TB, n int, capacity int64) ([]*node.Server, string) {
	t.Helper()
	var servers []*node.Server
	seed := ""
	for i := 0; i < n; i++ {
		s, err := node.NewServer("127.0.0.1:0", capacity, seed)
		if err != nil {
			t.Fatal(err)
		}
		if seed == "" {
			seed = s.Addr()
		}
		servers = append(servers, s)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, s := range servers {
			if s.RingSize() != n {
				converged = false
			}
		}
		if converged {
			return servers, seed
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("ring did not converge")
	return nil, ""
}

func dialTest(t testing.TB, seed string, opts ...peerstripe.Option) *peerstripe.Client {
	t.Helper()
	c, err := peerstripe.Dial(context.Background(), seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func totalStreamOps(servers []*node.Server) int64 {
	var n int64
	for _, s := range servers {
		n += s.StreamOps()
	}
	return n
}

func totalWindowOps(servers []*node.Server) int64 {
	var n int64
	for _, s := range servers {
		n += s.WindowOps()
	}
	return n
}

// TestStoreOpenRoundTripStreaming drives the full public data path
// with blocks larger than the wire segment: Store must move them as
// OpStoreStream segments (asserted via the server counters) and the
// Open/Read surface must hand back the exact bytes.
func TestStoreOpenRoundTripStreaming(t *testing.T) {
	servers, seed := testRing(t, 4, 1<<30)
	c := dialTest(t, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(2<<20),
		peerstripe.WithSegment(256<<10)) // 1 MiB blocks stream in 4 segments

	data := make([]byte, 8<<20)
	rand.New(rand.NewSource(3)).Read(data)
	ctx := context.Background()
	info, err := c.Store(ctx, "stream-rt.dat", bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(data)) || info.Chunks < 4 {
		t.Fatalf("info %+v", info)
	}
	if ops := totalStreamOps(servers); ops == 0 {
		t.Fatal("no streaming op served although blocks exceed the segment size")
	}

	f, err := c.Open(ctx, "stream-rt.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != int64(len(data)) {
		t.Fatalf("Size() = %d", f.Size())
	}
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("streamed round trip mismatch: %v", err)
	}

	// Seek + partial read through the io.ReadSeekCloser surface.
	if _, err := f.Seek(5<<20, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	part := make([]byte, 4096)
	if _, err := io.ReadFull(f, part); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, data[5<<20:5<<20+4096]) {
		t.Fatal("post-seek read mismatch")
	}
}

// TestReadAtFetchesOnlyNeededChunks pins the §4.1 ranged-read
// property on the public surface: a ReadAt inside one chunk costs at
// most that chunk's hedged block wave, and a cache hit costs nothing.
func TestReadAtFetchesOnlyNeededChunks(t *testing.T) {
	servers, seed := testRing(t, 4, 1<<30)
	c := dialTest(t, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(64<<10))

	data := make([]byte, 512<<10) // 8 chunks at the cap
	rand.New(rand.NewSource(4)).Read(data)
	ctx := context.Background()
	if _, err := c.StoreBytes(ctx, "ranged.dat", data); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open(ctx, "ranged.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	fetchesBefore := func() int64 {
		var n int64
		for _, s := range servers {
			n += s.FetchOps()
		}
		return n
	}
	base := fetchesBefore()
	buf := make([]byte, 1000)
	if _, err := f.ReadAt(buf, 100<<10); err != nil { // inside chunk 1
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[100<<10:100<<10+1000]) {
		t.Fatal("ranged bytes differ")
	}
	// (2,3) XOR with the default hedge of 1 requests at most all three
	// blocks of the one chunk the range touches.
	if delta := fetchesBefore() - base; delta == 0 || delta > 3 {
		t.Fatalf("ranged read cost %d block fetches, want 1..3 (one chunk's wave)", delta)
	}
	base = fetchesBefore()
	if _, err := f.ReadAt(buf, 101<<10); err != nil { // same chunk: cached
		t.Fatal(err)
	}
	if delta := fetchesBefore() - base; delta != 0 {
		t.Fatalf("cached re-read cost %d fetches", delta)
	}
}

// cancellingReader hands out pseudo-random bytes and fires cancel once
// half the file has been consumed, so the cancellation lands while the
// Store pipeline is mid-flight — past planning, before completion.
type cancellingReader struct {
	rng      *rand.Rand
	remain   int64
	fireAt   int64
	cancel   context.CancelFunc
	canceled bool
}

func (r *cancellingReader) Read(p []byte) (int, error) {
	if r.remain <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > r.remain {
		p = p[:r.remain]
	}
	r.rng.Read(p)
	r.remain -= int64(len(p))
	if !r.canceled && r.remain <= r.fireAt {
		r.canceled = true
		r.cancel()
	}
	return len(p), nil
}

// TestStoreCancelMidTransfer cancels a Store halfway through: the call
// must return the context error promptly, leak no goroutines, and
// leave the ring in a usable, repairable state (the same name stores
// cleanly afterwards).
func TestStoreCancelMidTransfer(t *testing.T) {
	_, seed := testRing(t, 4, 1<<30)
	c := dialTest(t, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(64<<10))

	// Warm up the connection pool (one persistent socket and read loop
	// per peer is steady state, not a leak) before the baseline.
	warm := make([]byte, 64<<10)
	rand.New(rand.NewSource(5)).Read(warm)
	if _, err := c.StoreBytes(context.Background(), "warmup.dat", warm); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const size = 1 << 20
	src := &cancellingReader{rng: rand.New(rand.NewSource(6)), remain: size, fireAt: size / 2, cancel: cancel}

	done := make(chan error, 1)
	go func() {
		_, err := c.Store(ctx, "doomed.dat", src, size)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled store did not return")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled store returned %v, want context.Canceled", err)
	}

	// Goroutine count settles back to (about) the baseline: nothing
	// from the cancelled pipeline is left behind.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+3 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+3 {
		t.Fatalf("goroutines did not settle: %d before, %d after cancel", before, n)
	}

	// The ring is still healthy: the same name stores and reads back.
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := c.StoreBytes(context.Background(), "doomed.dat", data); err != nil {
		t.Fatalf("re-store after cancel: %v", err)
	}
	f, err := c.Open(context.Background(), "doomed.dat")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	f.Close()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-cancel round trip: %v", err)
	}
	if st, err := c.Repair(context.Background(), "doomed.dat"); err != nil || st.ChunksLost != 0 {
		t.Fatalf("post-cancel repair: %+v, %v", st, err)
	}
}

// TestOpenReadCancel cancels the Open context while reads are in
// flight: the read must fail promptly with the context error, and
// reads after the cancel fail immediately.
func TestOpenReadCancel(t *testing.T) {
	_, seed := testRing(t, 4, 1<<30)
	c := dialTest(t, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(32<<10))

	data := make([]byte, 512<<10)
	rand.New(rand.NewSource(8)).Read(data)
	if _, err := c.StoreBytes(context.Background(), "cancel-read.dat", data); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	f, err := c.Open(ctx, "cancel-read.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	buf := make([]byte, 16<<10)
	start := time.Now()
	for {
		if _, err = f.ReadAt(buf, int64(rand.Intn(len(data)-len(buf)))); err != nil {
			break
		}
		if time.Since(start) > 10*time.Second {
			t.Fatal("reads kept succeeding long after cancel")
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("read after cancel returned %v, want context.Canceled", err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("subsequent read returned %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+3 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+3 {
		t.Fatalf("goroutines did not settle after read cancel: %d before, %d after", before, n)
	}
}

// TestClientKnobsFrozenUnderConcurrency is the regression test for the
// mutable-knob data races: before the redesign, reconfiguring a
// client (c.Workers = 4, c.Timeout = ...) while a transfer was in
// flight raced; the option-frozen client has no mutable knobs, so
// storms of concurrent operations on one client must run clean under
// the race detector.
func TestClientKnobsFrozenUnderConcurrency(t *testing.T) {
	_, seed := testRing(t, 5, 1<<30)
	c := dialTest(t, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(32<<10),
		peerstripe.WithWorkers(4),
		peerstripe.WithHedgeDelay(20*time.Millisecond))

	ctx := context.Background()
	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(9)).Read(data)
	if _, err := c.StoreBytes(ctx, "frozen-0.dat", data); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "frozen-" + string(rune('a'+g)) + ".dat"
			if _, err := c.StoreBytes(ctx, name, data); err != nil {
				errs <- err
				return
			}
			f, err := c.Open(ctx, name)
			if err != nil {
				errs <- err
				return
			}
			got, err := io.ReadAll(f)
			f.Close()
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- errors.New("concurrent round trip mismatch")
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			c.Refresh(ctx) //nolint:errcheck
			for _, addr := range c.Nodes() {
				c.StatNode(ctx, addr) //nolint:errcheck
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestErrNotFoundAndUnavailable pins the public error classification.
func TestErrNotFoundAndUnavailable(t *testing.T) {
	_, seed := testRing(t, 3, 1<<30)
	c := dialTest(t, seed)
	ctx := context.Background()
	if _, err := c.Open(ctx, "never-stored.dat"); !errors.Is(err, peerstripe.ErrNotFound) {
		t.Fatalf("open of missing file: %v", err)
	}
	if _, err := c.Stat(ctx, "never-stored.dat"); !errors.Is(err, peerstripe.ErrNotFound) {
		t.Fatalf("stat of missing file: %v", err)
	}
	if _, err := peerstripe.Dial(ctx, "127.0.0.1:1", peerstripe.WithTimeout(300*time.Millisecond)); !errors.Is(err, peerstripe.ErrRingUnavailable) {
		t.Fatalf("dial of dead seed: %v", err)
	}
}

// TestRefreshDeadContactClassified pins that a Refresh against a
// contact node that has since died is classified as ErrRingUnavailable
// rather than surfacing as a bare transport error.
func TestRefreshDeadContactClassified(t *testing.T) {
	servers, seed := testRing(t, 2, 1<<30)
	c := dialTest(t, seed, peerstripe.WithTimeout(500*time.Millisecond))
	ctx := context.Background()
	if err := c.Refresh(ctx); err != nil {
		t.Fatalf("refresh against live ring: %v", err)
	}
	for _, s := range servers {
		s.Close()
	}
	err := c.Refresh(ctx)
	if err == nil {
		t.Fatal("refresh against dead contact succeeded")
	}
	if !errors.Is(err, peerstripe.ErrRingUnavailable) {
		t.Fatalf("refresh error not classified: %v", err)
	}
}

// TestDialOptionValidation pins option errors at Dial time.
func TestDialOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := peerstripe.Dial(ctx, "127.0.0.1:1", peerstripe.WithCode("lrc")); err == nil {
		t.Fatal("unknown code accepted")
	}
	if _, err := peerstripe.Dial(ctx, "127.0.0.1:1", peerstripe.WithCode("xor"), peerstripe.WithSchedule("windowed")); err == nil {
		t.Fatal("schedule accepted for a code without the knob")
	}
	if _, err := peerstripe.Dial(ctx, "127.0.0.1:1", peerstripe.WithWorkers(-1)); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := peerstripe.Dial(ctx, "127.0.0.1:1", peerstripe.WithSegment(1<<30)); err == nil {
		t.Fatal("oversized segment accepted")
	}
}
