module peerstripe

go 1.23
