module peerstripe

go 1.24.0
